#include "multi/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "multi/read_spans.hpp"

namespace maps::multi {

namespace {
constexpr maps::Dim3 kBlock2D{32, 8, 1};
constexpr maps::Dim3 kBlock1D{1, 128, 1};

double elapsed_us(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Default exec-thread count: MAPS_EXEC_THREADS env override (0 = forced
/// sequential), else hardware_concurrency.
unsigned default_exec_threads() {
  if (const char* env = std::getenv("MAPS_EXEC_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0') {
      return static_cast<unsigned>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}
} // namespace

namespace detail {

/// Worker-pool-backed sim::FunctionalExecutor. One fork-join Group per
/// PHYSICAL node device holds that device's (at most one) pending kernel
/// body; the event loop joins the device before deferring the next body, so
/// same-device sweeps never overlap. Chunked sweeps running inside a body
/// fork their block-row chunks onto the same pool — the pool's helping
/// waits make the nested fork-join deadlock-free.
class ExecBackend : public sim::FunctionalExecutor {
public:
  ExecBackend(unsigned parallelism, int device_count)
      : pool_(parallelism), groups_(static_cast<std::size_t>(device_count)) {}

  ThreadPool& pool() { return pool_; }

  void run_kernel_body(int device, std::function<void()> body) override {
    pool_.submit(groups_[static_cast<std::size_t>(device)], std::move(body));
  }

  void join_device(int device) override {
    pool_.wait(groups_[static_cast<std::size_t>(device)]);
  }

  void join_all() override {
    std::exception_ptr first;
    for (auto& g : groups_) {
      try {
        pool_.wait(g);
      } catch (...) {
        if (!first) {
          first = std::current_exception();
        }
      }
    }
    if (first) {
      std::rethrow_exception(first);
    }
  }

private:
  ThreadPool pool_;
  std::vector<ThreadPool::Group> groups_;
};

} // namespace detail

Scheduler::Scheduler(sim::Node& node, std::vector<int> devices)
    : node_(node),
      devices_(devices.empty() ? [&] {
        std::vector<int> all(static_cast<std::size_t>(node.device_count()));
        std::iota(all.begin(), all.end(), 0);
        return all;
      }() : std::move(devices)),
      analyzer_(node_, devices_),
      monitor_(static_cast<int>(devices_.size())),
      planner_(monitor_, node_.topology(), devices_) {
  for (std::size_t s = 0; s < devices_.size(); ++s) {
    compute_streams_.push_back(node_.create_stream(devices_[s]));
    copy_streams_.push_back(node_.create_stream(devices_[s]));
    copy_streams2_.push_back(node_.create_stream(devices_[s]));
    reduce_streams_.push_back(node_.create_stream(devices_[s]));
    boundary_streams_.push_back(node_.create_stream(devices_[s]));
    invokers_.push_back(std::make_unique<InvokerThread>(static_cast<int>(s)));
  }
  live_.resize(devices_.size());
  std::iota(live_.begin(), live_.end(), 0);
  dead_.assign(devices_.size(), false);
  set_exec_threads(default_exec_threads());
}

Scheduler::~Scheduler() {
  // Drain invokers before the analyzer frees device buffers referenced by
  // still-enqueued jobs.
  for (auto& inv : invokers_) {
    try {
      inv->flush();
    } catch (...) {
      // Destructor: swallow job errors that were never collected.
    }
  }
  // Unhook and tear down the execution backend before anything a deferred
  // body could reference dies. No bodies are pending here: every drain exit
  // joins the backend, and the invokers above are flushed.
  if (exec_backend_ != nullptr) {
    node_.set_functional_executor(nullptr);
    exec_backend_.reset();
  }
  // All plan references are gone now; free whatever the deleters stacked.
  TaskPlan* head = plan_recycle_head_.exchange(nullptr);
  while (head != nullptr) {
    TaskPlan* next = head->recycle_next;
    delete head;
    head = next;
  }
}

void Scheduler::set_task_overhead_us(double task_us, double per_device_us) {
  task_overhead_us_ = task_us;
  per_device_overhead_us_ = per_device_us;
}

void Scheduler::set_exec_threads(unsigned n) {
  const bool want_backend = n > 0 && node_.functional();
  if (n == exec_threads_ && want_backend == (exec_backend_ != nullptr)) {
    return;
  }
  // Quiesce before switching: in-flight bodies were created against the
  // current backend. Skipped on the fresh-construction path (nothing could
  // be in flight, and synchronizing here would drain commands other
  // schedulers on the node may still be wiring up).
  if (tasks_scheduled() != 0 || exec_backend_ != nullptr) {
    for (auto& inv : invokers_) {
      inv->flush();
    }
    node_.synchronize();
  }
  if (exec_backend_ != nullptr) {
    node_.set_functional_executor(nullptr);
    exec_backend_.reset();
  }
  exec_threads_ = n;
  stats_.exec.threads = n;
  if (want_backend) {
    exec_backend_ =
        std::make_unique<detail::ExecBackend>(n, node_.device_count());
    node_.set_functional_executor(exec_backend_.get());
  }
}

ThreadPool* Scheduler::exec_pool() {
  return exec_backend_ != nullptr ? &exec_backend_->pool() : nullptr;
}

void Scheduler::refresh_exec_stats() const {
  stats_.exec.threads = exec_threads_;
  if (exec_backend_ == nullptr) {
    return;
  }
  const ThreadPool::Stats s = exec_backend_->pool().stats();
  stats_.exec.chunks_executed = s.executed;
  stats_.exec.chunks_stolen = s.stolen;
  stats_.exec.idle_waits = s.idle_waits;
}

std::uint64_t* Scheduler::append_counter(const Datum* datum, int slot) {
  auto& vec = append_counts_[datum->key()];
  if (!vec) {
    vec = std::make_shared<std::vector<std::uint64_t>>(devices_.size(), 0);
  }
  return &(*vec)[static_cast<std::size_t>(slot)];
}

TaskPartition
Scheduler::derive_partition(const std::vector<PatternSpec>& specs,
                            const Work* work, int slots_eff) const {
  if (work != nullptr) {
    return make_partition(work->rows, work->cols, maps::Dim3{1, 1, 1}, 1, 1,
                          slots_eff);
  }
  // Work dimensions come from the first Structured Injective output; when a
  // task has none (e.g. histogram), from the first Window input (Fig 4).
  const PatternSpec* dims_src = nullptr;
  for (const auto& s : specs) {
    if (s.kind == PatternKind::StructuredInjective) {
      dims_src = &s;
      break;
    }
  }
  if (dims_src == nullptr) {
    for (const auto& s : specs) {
      if (s.is_input && s.kind == PatternKind::Window) {
        dims_src = &s;
        break;
      }
    }
  }
  if (dims_src == nullptr) {
    for (const auto& s : specs) {
      if (s.seg == Segmentation::PartitionAligned) {
        dims_src = &s;
        break;
      }
    }
  }
  if (dims_src == nullptr && !specs.empty()) {
    dims_src = &specs.front();
  }
  if (dims_src == nullptr) {
    throw std::invalid_argument("Invoke: task has no pattern arguments");
  }
  const std::size_t rows = dims_src->datum->rows();
  const std::size_t cols = dims_src->datum->row_elems();

  // ILP configuration comes from the output containers (§4.5.1).
  unsigned ilp_x = 1, ilp_y = 1;
  for (const auto& s : specs) {
    if (!s.is_input) {
      ilp_x = static_cast<unsigned>(s.ilp_x);
      ilp_y = static_cast<unsigned>(s.ilp_y);
      break;
    }
  }
  if (cols == 1) {
    // 1-D work: fold all ILP into the partition dimension.
    ilp_y = std::max(1u, ilp_x * ilp_y);
    ilp_x = 1;
    return make_partition(rows, cols, kBlock1D, ilp_x, ilp_y, slots_eff);
  }
  return make_partition(rows, cols, kBlock2D, ilp_x, ilp_y, slots_eff);
}

void Scheduler::apply_placement(const std::vector<PatternSpec>& specs) {
  if (!placement_enabled_ || node_.topology().cluster_nodes() <= 1 ||
      live_.size() <= 1) {
    return;
  }
  // Placement only helps pattern sets with provable adjacent-segment
  // exchanges: halo inputs, whose block-row neighbours trade boundary rows
  // every task. Broadcast (Replicate) consumers already cross the network
  // once per node under hierarchical routing regardless of segment order,
  // so reordering buys them nothing and would churn plan-cache shapes.
  bool halo = false;
  for (const auto& s : specs) {
    if (s.is_input && s.seg == Segmentation::PartitionAligned &&
        (s.radius_low > 0 || s.radius_high > 0)) {
      halo = true;
      break;
    }
  }
  if (!halo) {
    return;
  }
  ++stats_.placement.evaluations;
  const sim::Topology& topo = node_.topology();
  const auto dev = [&](int slot) {
    return devices_[static_cast<std::size_t>(slot)];
  };
  const auto crossings = [&](const std::vector<int>& order) {
    std::uint32_t n = 0;
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
      if (topo.cluster_node_of(dev(order[i])) !=
          topo.cluster_node_of(dev(order[i + 1]))) {
        ++n;
      }
    }
    return n;
  };
  // Canonical order: live slots sorted by (cluster node, bus, device index).
  // Adjacent segments become node neighbours — the minimum possible
  // node-crossing count for a linear halo chain — and within a node, bus
  // neighbours. The canonical order is unique and independent of the
  // current one, so placement can never flip-flop between equal-cost orders
  // across tasks; a reorder is adopted only when strictly cheaper, which
  // also makes the pass a provable no-op for the default node-contiguous
  // device enumeration.
  std::vector<int> canonical = live_;
  std::stable_sort(canonical.begin(), canonical.end(), [&](int a, int b) {
    const int da = dev(a), db = dev(b);
    const int na = topo.cluster_node_of(da), nb = topo.cluster_node_of(db);
    if (na != nb) {
      return na < nb;
    }
    const int ba = topo.bus_of(da), bb = topo.bus_of(db);
    if (ba != bb) {
      return ba < bb;
    }
    return da < db;
  });
  const std::uint32_t cur = crossings(live_);
  const std::uint32_t can = crossings(canonical);
  if (can < cur) {
    stats_.placement.crossings_before = cur;
    stats_.placement.crossings_after = can;
    ++stats_.placement.reorders;
    live_ = std::move(canonical);
  }
}

void Scheduler::analyze_task(std::vector<PatternSpec> specs,
                             const Work* work) {
  bool single = work != nullptr && work->single_device;
  for (const auto& s : specs) {
    monitor_.register_datum(s.datum);
    single = single || s.seg == Segmentation::SingleDevice;
  }
  apply_placement(specs);
  const int slots_eff = single ? 1 : live_count();
  TaskPartition partition = derive_partition(specs, work, slots_eff);
  for (int seg = 0; seg < slots_eff; ++seg) {
    const int slot = live_[static_cast<std::size_t>(seg)];
    for (const auto& s : specs) {
      analyzer_.record(s, compute_requirement(s, partition, seg), slot);
    }
  }
}

// --- Plan cache --------------------------------------------------------------

bool Scheduler::cacheable(const std::vector<PatternSpec>& specs) {
  // CustomAligned row mappings are opaque host functions: two Invokes with
  // equal fingerprints could still need different rows, so never cache them.
  for (const auto& s : specs) {
    if (s.custom_rows) {
      return false;
    }
  }
  return true;
}

Scheduler::PlanFingerprint
Scheduler::fingerprint(const std::vector<PatternSpec>& specs, const Work* work,
                       const CostHints& hints, const char* label,
                       bool splittable) const {
  PlanFingerprint fp;
  auto& w = fp.words;
  w.reserve(specs.size() * 12 + 11);
  w.push_back(0x4d415053'46503105ull); // "MAPS" fingerprint, version 5
  w.push_back(static_cast<std::uint64_t>(slots()));
  // Device losses change the segment → slot map, so the live set is part of
  // the shape identity (the cache is also cleared wholesale on recovery;
  // this guards any plan that survives in flight).
  std::uint64_t live_mask = 0;
  for (int s : live_) {
    live_mask |= 1ull << s;
  }
  w.push_back(live_mask);
  // The live *order* is the segment → slot map itself; topology-aware
  // placement can permute it without changing the mask, and a plan built
  // under one order must never replay under another.
  std::uint64_t live_order = 0xcbf29ce484222325ull;
  for (int s : live_) {
    live_order = (live_order ^ static_cast<std::uint64_t>(s)) *
                 0x100000001b3ull;
  }
  w.push_back(live_order);
  // Routing is baked into cached plans, so the planner setting is part of
  // the shape identity: a plan routed with the planner on must never be
  // replayed after it is switched off (or vice versa).
  w.push_back(planner_active() ? 1 : 0);
  // Likewise for overlap: strip decomposition, copy chunking and the split
  // cost gate are all baked into the shape.
  w.push_back((overlap_enabled_ ? 2u : 0u) | (splittable ? 1u : 0u));
  w.push_back(static_cast<std::uint64_t>(copy_chunk_bytes_));
  w.push_back(std::bit_cast<std::uint64_t>(overlap_min_benefit_));
  // The device-memory budget decides which residents a build evicts, so a
  // plan built under one budget must never replay under another.
  w.push_back(static_cast<std::uint64_t>(device_memory_budget_));
  w.push_back(specs.size());
  for (const auto& s : specs) {
    w.push_back(reinterpret_cast<std::uintptr_t>(s.datum->key()));
    // Shape guards the (unlikely) reuse of a datum address by a new datum.
    w.push_back(s.datum->rows());
    w.push_back(s.datum->row_elems());
    w.push_back(s.datum->elem_size());
    w.push_back((static_cast<std::uint64_t>(s.kind) << 32) |
                (static_cast<std::uint64_t>(s.seg) << 16) |
                (static_cast<std::uint64_t>(s.agg) << 8) |
                (s.is_input ? 1u : 0u));
    w.push_back(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(s.radius_low)));
    w.push_back(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(s.radius_high)));
    w.push_back((static_cast<std::uint64_t>(s.boundary) << 32) |
                (static_cast<std::uint64_t>(s.ilp_x) << 16) |
                static_cast<std::uint64_t>(s.ilp_y));
    w.push_back(s.row_scale_num);
    w.push_back(s.row_scale_den);
  }
  if (work != nullptr) {
    w.push_back(1);
    w.push_back(work->rows);
    w.push_back(work->cols);
    w.push_back(work->single_device ? 1 : 0);
  } else {
    w.push_back(0);
  }
  w.push_back(std::bit_cast<std::uint64_t>(hints.flops_per_elem));
  w.push_back(std::bit_cast<std::uint64_t>(hints.instr_per_thread));
  w.push_back(std::bit_cast<std::uint64_t>(hints.flop_efficiency));
  // Cost label (kernel/routine family) feeds the launch-stats label.
  std::uint64_t lh = 0xcbf29ce484222325ull;
  for (const char* p = label; *p != '\0'; ++p) {
    lh = (lh ^ static_cast<unsigned char>(*p)) * 0x100000001b3ull;
  }
  w.push_back(lh);
  fp.hash = hash_words(w.data(), w.size());
  return fp;
}

std::vector<Scheduler::DatumCapture>
Scheduler::capture_datums(const std::vector<PatternSpec>& specs) const {
  std::vector<DatumCapture> caps;
  caps.reserve(specs.size());
  for (const auto& s : specs) {
    const Datum* d = s.datum;
    if (std::any_of(caps.begin(), caps.end(), [&](const DatumCapture& c) {
          return c.datum->key() == d->key();
        })) {
      continue;
    }
    DatumCapture cap;
    cap.datum = d;
    cap.host_ptr = d->bound() ? d->host_raw() : nullptr;
    cap.epoch = monitor_.epoch(d);
    monitor_.state_snapshot(d, cap.snapshot);
    caps.push_back(std::move(cap));
  }
  return caps;
}

std::vector<Scheduler::DatumPostState>
Scheduler::capture_post_states(const std::vector<PatternSpec>& specs,
                               const std::vector<DatumCapture>& pre) const {
  std::vector<DatumPostState> post;
  post.reserve(specs.size());
  for (const auto& s : specs) {
    const Datum* d = s.datum;
    if (std::any_of(post.begin(), post.end(), [&](const DatumPostState& p) {
          return p.datum->key() == d->key();
        })) {
      continue;
    }
    // The build left this datum untouched (typically an input that was
    // already resident everywhere it is needed): its post-state IS the
    // pre-state the hit will have re-proved, so replay has nothing to
    // restore for it.
    const auto pc = std::find_if(pre.begin(), pre.end(), [&](
        const DatumCapture& c) { return c.datum->key() == d->key(); });
    if (pc != pre.end() && pc->epoch == monitor_.epoch(d)) {
      continue;
    }
    DatumPostState ps;
    ps.datum = d;
    monitor_.capture_state(d, ps.state);
    post.push_back(std::move(ps));
  }
  return post;
}

bool Scheduler::captures_valid(
    const std::vector<DatumCapture>& captures) const {
  std::vector<std::uint64_t> cur;
  for (const auto& cap : captures) {
    const void* host = cap.datum->bound() ? cap.datum->host_raw() : nullptr;
    if (host != cap.host_ptr) {
      return false; // re-Bind: cached host source addresses are stale
    }
    const std::uint64_t e = monitor_.epoch(cap.datum);
    if (e == cap.epoch) {
      continue;
    }
    cur.clear();
    monitor_.state_snapshot(cap.datum, cur);
    if (cur != cap.snapshot) {
      return false;
    }
    // Periodic steady state (e.g. double buffering) came back around to the
    // captured state under a different epoch; re-arm the fast path.
    cap.epoch = e;
  }
  return true;
}

void Scheduler::cache_insert(PlanFingerprint fp,
                             std::shared_ptr<const PlanShape> shape,
                             std::vector<DatumCapture> captures,
                             std::vector<DatumPostState> post_state) {
  CacheEntry entry;
  entry.shape = std::move(shape);
  entry.captures = std::move(captures);
  entry.post_state = std::move(post_state);

  auto it = cache_.find(fp);
  if (it != cache_.end()) { // new state variant of an already-cached shape
    auto& vars = it->second.variants;
    vars.insert(vars.begin(), std::move(entry));
    if (vars.size() > kVariantsPerFingerprint) {
      vars.pop_back();
    }
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }

  while (cache_.size() >= plan_cache_capacity_ && !lru_.empty()) {
    cache_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.cache_evictions;
  }
  lru_.push_front(fp);
  CacheSlot slot;
  slot.variants.push_back(std::move(entry));
  slot.lru_it = lru_.begin();
  cache_[std::move(fp)] = std::move(slot);
}

void Scheduler::set_plan_cache_capacity(std::size_t n) {
  plan_cache_capacity_ = n;
  while (cache_.size() > plan_cache_capacity_ && !lru_.empty()) {
    cache_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.cache_evictions;
  }
}

std::size_t Scheduler::live_dependency_intervals() const {
  std::size_t n = 0;
  for (const auto& [key, map] : avail_) {
    n += map.entry_count();
  }
  for (const auto& [key, map] : access_) {
    n += map.entry_count();
  }
  return n;
}

// --- Planning ----------------------------------------------------------------

void Scheduler::wire_copy(const PlannedCopy& c, DeviceWiring& dw,
                          CopyWiring& w, sim::EventId done,
                          bool update_monitor) {
  const std::size_t base = dw.wait_pool.size();
  w.wait_begin = static_cast<std::uint32_t>(base);
  w.done = done;
  w.dropped = false; // recycled replay wiring may carry a stale fault flag
  if (c.zero_fill) {
    c.dst_access->collect(c.dst_local, dw.wait_pool, base);
    c.dst_access->write(c.dst_local, w.done);
    w.wait_end = static_cast<std::uint32_t>(dw.wait_pool.size());
    return;
  }
  // Producer availability of exactly the copied rows at the source (GLOBAL
  // rows), plus WAR against prior readers/writers of the destination slot
  // (LOCAL rows).
  c.src_avail->collect(c.rows, dw.wait_pool, base);
  c.dst_access->collect(c.dst_local, dw.wait_pool, base);
  c.dst_access->write(c.dst_local, w.done);
  // Register the read on the source (LOCAL rows there).
  c.src_access->add_reader(c.src_local, w.done);
  // Only rows whose virtual position equals their global position can later
  // serve as copy sources (wrapped/clamped halo slots cannot), and only then
  // does the replica register as available data that later tasks may chain
  // on.
  if (c.aligned) {
    if (update_monitor) {
      monitor_.mark_copied(c.datum, c.dst_location, c.rows);
    }
    c.dst_avail->update(c.rows, w.done);
  }
  w.wait_end = static_cast<std::uint32_t>(dw.wait_pool.size());
}

void Scheduler::plan_copies_for(PlanShape& shape, DeviceWiring& dw, int slot,
                                int pattern_index, const SegmentReq& req,
                                const MemoryAnalyzer::Alloc& alloc) {
  const PatternSpec& spec =
      shape.specs[static_cast<std::size_t>(pattern_index)];
  Datum* datum = spec.datum;
  DevicePlan& dp = shape.devices[static_cast<std::size_t>(slot)];
  const int dst_loc = SegmentLocationMonitor::loc(slot);

  for (const CopyRegion& region : req.input_regions) {
    if (region.zero_fill) {
      PlannedCopy c;
      c.pattern_index = pattern_index;
      c.zero_fill = true;
      c.whole_buffer = req.whole;
      c.datum = datum;
      c.dst_location = dst_loc;
      c.dst_access = &access_[{datum->key(), dst_loc}];
      c.dst_buffer = alloc.buffer;
      if (c.whole_buffer) {
        c.dst_offset = 0;
        c.bytes = alloc.buffer->size();
        c.dst_local = RowInterval{0, alloc.rows};
      } else {
        const std::size_t local_row = static_cast<std::size_t>(
            region.local_row + (req.origin - alloc.origin));
        c.dst_offset = local_row * alloc.row_bytes;
        c.bytes = alloc.row_bytes;
        c.dst_local = RowInterval{local_row, local_row + 1};
      }
      CopyWiring w;
      wire_copy(c, dw, w, node_.create_event(), /*update_monitor=*/true);
      dp.copies.push_back(std::move(c));
      dw.copies.push_back(w);
      continue;
    }

    // Whether this region lands at its global position (core / interior
    // halo) or in a Wrap/Clamp slot that must be refilled every task.
    const bool aligned = region_lands_aligned(region, req.origin);

    // The region's rows are served per Algorithm 2, then routed over the
    // topology by the transfer planner (when active; forced host staging
    // prescribes every route).
    const auto t_monitor = std::chrono::steady_clock::now();
    auto ops = monitor_.plan_copies(datum, dst_loc, region.global, aligned);
    stats_.monitor_plan_us += elapsed_us(t_monitor);
    if (planner_active()) {
      const auto t_route = std::chrono::steady_clock::now();
      ops = planner_.route(datum, dst_loc, alloc.row_bytes, std::move(ops),
                           shape.transfers);
      stats_.route_plan_us += elapsed_us(t_route);
    } else {
      shape.transfers.copies_planned += static_cast<std::uint32_t>(ops.size());
    }
    // Row-range chunking: split transfers above the threshold so consumers
    // with row-granular reads (interior/boundary strips, forwarding copies
    // in a fan-out tree) start as soon as their chunk lands instead of when
    // the whole transfer finishes. On clusters, chunk pieces of one network
    // crossing additionally pipeline their D2H / NIC / H2D hops in the
    // simulator's leg-wise occupancy model, so network routes are chunked
    // even when compute–transfer overlap is off. Purely structural — every
    // chunk moves the same rows over the same link, so byte totals are
    // unchanged.
    const sim::Topology& topo = node_.topology();
    const auto op_crosses = [&](const SegmentLocationMonitor::CopyOp& op) {
      const int src_dev =
          op.src_location == SegmentLocationMonitor::kHost
              ? -1
              : devices_[static_cast<std::size_t>(op.src_location - 1)];
      return topo.cluster_node_of(src_dev) !=
             topo.cluster_node_of(devices_[static_cast<std::size_t>(slot)]);
    };
    // Without leg-wise occupancy (network_pipelining off) chunked crossings
    // would serialize whole-duration reservations and only add per-piece
    // latency, so the PR 8 monolithic model plans monolithic routes.
    const bool chunk_network = planner_active() && topo.cluster_nodes() > 1 &&
                               topo.network_pipelining;
    if (copy_chunk_bytes_ > 0 && (overlap_enabled_ || chunk_network)) {
      const std::size_t chunk_rows =
          std::max<std::size_t>(1, copy_chunk_bytes_ / alloc.row_bytes);
      const auto splits = [&](const SegmentLocationMonitor::CopyOp& op) {
        return op.rows.size() > chunk_rows &&
               (overlap_enabled_ || op_crosses(op));
      };
      const bool oversize = std::any_of(ops.begin(), ops.end(), splits);
      if (oversize) {
        std::vector<SegmentLocationMonitor::CopyOp> pieces;
        pieces.reserve(ops.size());
        for (const auto& op : ops) {
          if (!splits(op)) {
            pieces.push_back(op);
            continue;
          }
          const std::uint32_t depth = static_cast<std::uint32_t>(
              (op.rows.size() + chunk_rows - 1) / chunk_rows);
          shape.transfers.max_pipeline_depth =
              std::max(shape.transfers.max_pipeline_depth, depth);
          (op_crosses(op) ? shape.transfers.bytes_chunked_network
                          : shape.transfers.bytes_chunked_intranode) +=
              op.rows.size() * alloc.row_bytes;
          std::size_t b = op.rows.begin;
          while (op.rows.end - b > chunk_rows) {
            auto piece = op;
            piece.rows = RowInterval{b, b + chunk_rows};
            pieces.push_back(piece);
            b += chunk_rows;
            ++shape.transfers.copies_chunked;
          }
          auto tail = op;
          tail.rows = RowInterval{b, op.rows.end};
          pieces.push_back(tail);
        }
        ops = std::move(pieces);
      }
    }
    for (const auto& op : ops) {
      PlannedCopy c;
      c.pattern_index = pattern_index;
      c.aligned = aligned;
      c.src_location = op.src_location;
      c.dst_location = dst_loc;
      c.via_host = op.via_host;
      c.datum = datum;
      c.src_avail = &avail_[{datum->key(), op.src_location}];
      c.dst_avail = &avail_[{datum->key(), dst_loc}];
      c.src_access = &access_[{datum->key(), op.src_location}];
      c.dst_access = &access_[{datum->key(), dst_loc}];
      c.rows = op.rows;
      c.dst_buffer = alloc.buffer;
      const long local = region.local_row +
                         static_cast<long>(op.rows.begin - region.global.begin) +
                         (req.origin - alloc.origin);
      c.dst_offset = static_cast<std::size_t>(local) * alloc.row_bytes;
      c.bytes = op.rows.size() * alloc.row_bytes;
      c.dst_local = RowInterval{static_cast<std::size_t>(local),
                                static_cast<std::size_t>(local) +
                                    op.rows.size()};
      if (op.src_location == SegmentLocationMonitor::kHost) {
        if (!datum->bound()) {
          throw std::runtime_error("datum '" + datum->name() +
                                   "' must be bound to a host buffer before "
                                   "it is used as input");
        }
        c.src_host = datum->host_row(op.rows.begin);
        c.src_local = op.rows; // host: local == global
      } else {
        const int src_slot = op.src_location - 1;
        const auto* src_alloc = analyzer_.find(datum, src_slot);
        if (src_alloc == nullptr) {
          throw std::logic_error("location monitor references an allocation "
                                 "that does not exist");
        }
        c.src_buffer = src_alloc->buffer;
        c.src_offset = src_alloc->row_offset(
            static_cast<long>(op.rows.begin));
        c.src_local = RowInterval{
            static_cast<std::size_t>(static_cast<long>(op.rows.begin) -
                                     src_alloc->origin),
            static_cast<std::size_t>(static_cast<long>(op.rows.end) -
                                     src_alloc->origin)};
      }
      // Out-of-core refill classification: a copy landing entirely on rows
      // this location previously spilled is residency-policy traffic, not the
      // task's inherent data movement — it rematerializes evicted state. It
      // is accounted under SpillStats (partially spilled destinations stay
      // ordinary, so refills never over-count). Checked before wire_copy:
      // mark_copied below clears the spilled record.
      const bool refill = device_memory_budget_ > 0 && c.aligned &&
                          !op.rows.empty() &&
                          monitor_.spilled(datum, dst_loc).covers(op.rows);
      TransferStats& tacct = refill ? shape.spill.transfers : shape.transfers;
      if (refill) {
        ++shape.spill.refills;
        shape.spill.bytes_refilled += c.bytes;
      }
      // Byte attribution by physical path, matching how the copy will be
      // dispatched (forced staging and cross-node peers bounce through the
      // host).
      ++tacct.copies_issued;
      const sim::Endpoint src_ep =
          op.src_location == SegmentLocationMonitor::kHost
              ? sim::Endpoint::host()
              : sim::Endpoint::dev(
                    devices_[static_cast<std::size_t>(op.src_location - 1)]);
      const sim::Endpoint dst_ep =
          sim::Endpoint::dev(devices_[static_cast<std::size_t>(slot)]);
      const bool staged =
          !src_ep.is_host() &&
          (force_host_staged_ || op.via_host ||
           !node_.topology().peer_enabled(src_ep.device, dst_ep.device));
      TransferPlanner::account(tacct, node_.topology(), src_ep,
                               dst_ep, staged, c.bytes);
      CopyWiring w;
      wire_copy(c, dw, w, node_.create_event(), /*update_monitor=*/true);
      dp.copies.push_back(std::move(c));
      dw.copies.push_back(w);
    }
  }
}

void Scheduler::commit_post_state(const DevicePlan& dp, const DeviceWiring& dw,
                                  int slot, bool update_monitor) {
  const int loc = SegmentLocationMonitor::loc(slot);
  if (!dp.sub.empty()) {
    // Split device: reads and writes register per strip, so a consumer (a
    // neighbour's next halo pull, the next task's interior) waits only on
    // the strip that actually produced or read its rows.
    for (std::size_t i = 0; i < dp.post.size(); ++i) {
      const PatternPost& post = dp.post[i];
      if (!post.active) {
        continue;
      }
      for (std::size_t k = 0; k < dp.sub.size(); ++k) {
        const StripSpan& sp = dp.sub[k].spans[i];
        const sim::EventId done = dw.strips[k].done;
        if (post.is_input) {
          if (!sp.read_local.empty()) {
            post.access->add_reader(sp.read_local, done);
          }
        } else if (!sp.out_global.empty()) {
          post.avail->update(sp.out_global, done);
          post.access->write(sp.out_local, done);
        }
      }
      if (!post.is_input && update_monitor && !post.private_copy) {
        monitor_.mark_written(post.datum, loc, post.core);
      }
    }
    return;
  }
  for (const PatternPost& post : dp.post) {
    if (!post.active) {
      continue;
    }
    if (post.is_input) {
      // The kernel read the whole local buffer (core + halos).
      post.access->add_reader(post.local_span, dw.kernel_done);
    } else {
      // Private (duplicated) partials span the whole datum; aligned outputs
      // produce exactly their core rows.
      post.avail->update(post.produced, dw.kernel_done);
      post.access->write(post.core_local, dw.kernel_done);
      if (update_monitor && !post.private_copy) {
        monitor_.mark_written(post.datum, loc, post.core);
      }
    }
  }
}

void Scheduler::commit_aggregations(const PlanShape& shape,
                                    bool update_monitor) {
  // Reductive / unstructured outputs: register the pending aggregation and
  // reset the per-device append counters.
  for (const auto& s : shape.specs) {
    if (s.is_input || s.agg == AggregationKind::None) {
      continue;
    }
    if (update_monitor) { // replay restores the captured post-state instead
      SegmentLocationMonitor::PendingAggregation agg;
      agg.kind = s.agg;
      agg.op = s.agg_op;
      for (std::size_t slot = 0; slot < shape.devices.size(); ++slot) {
        if (shape.devices[slot].active) {
          agg.writer_slots.push_back(static_cast<int>(slot));
        }
      }
      monitor_.set_pending_aggregation(s.datum, std::move(agg));
    }
    if (s.agg == AggregationKind::Append) {
      auto& counts = append_counts_[s.datum->key()];
      if (!counts) {
        counts =
            std::make_shared<std::vector<std::uint64_t>>(devices_.size(), 0);
      }
      std::fill(counts->begin(), counts->end(), 0);
    }
  }
}

void Scheduler::account_dispatch(const PlanShape& shape) {
  stats_.transfers.add(shape.transfers);
  stats_.spill.add(shape.spill);
  stats_.interior_subkernels += shape.interior_launches;
  stats_.boundary_subkernels += shape.boundary_launches;
}

std::shared_ptr<Scheduler::TaskPlan>
Scheduler::plan_task(std::vector<PatternSpec> specs, const Work* work,
                     const CostHints& hints, const char* label,
                     bool splittable) {
  for (const auto& s : specs) {
    monitor_.register_datum(s.datum);
  }
  // Out-of-core LRU recency: every datum this task references counts as
  // touched on every live slot, for hit and miss paths alike — a replayed
  // plan keeps its buffers exactly as warm as a rebuilt one would.
  if (device_memory_budget_ > 0) {
    const std::uint64_t stamp = ++touch_counter_;
    for (const auto& s : specs) {
      for (int slot : live_) {
        last_touch_[{s.datum->key(), slot}] = stamp;
      }
    }
  }
  // Placement must settle before the fingerprint is taken: the chosen
  // segment -> slot order is part of the plan's shape identity.
  apply_placement(specs);

  // Budget enforcement must precede the cache lookup: a replayed plan bakes
  // in the residency it was built under, and any eviction here clears the
  // cache, so the subsequent miss rebuilds with the refill copies planned.
  // (build_plan enforces again after recording this task's requirements —
  // that second pass is exact for first-time tasks whose planned sizes are
  // unknown here.)
  if (device_memory_budget_ > 0) {
    bool single = work != nullptr && work->single_device;
    for (const auto& s : specs) {
      single = single || s.seg == Segmentation::SingleDevice;
    }
    enforce_budget(specs, single ? 1 : live_count());
  }

  const bool want_cache = plan_cache_enabled_ && plan_cache_capacity_ > 0;
  const bool use_cache = want_cache && cacheable(specs);
  if (want_cache && !use_cache) {
    ++stats_.uncacheable_tasks;
  }
  if (!use_cache) {
    const auto t0 = std::chrono::steady_clock::now();
    auto plan = build_plan(std::move(specs), work, hints, label, splittable);
    stats_.plan_time_us += elapsed_us(t0);
    ++stats_.plans_built;
    account_dispatch(*plan->shape);
    return plan;
  }

  PlanFingerprint fp = fingerprint(specs, work, hints, label, splittable);
  auto it = cache_.find(fp);
  if (it != cache_.end()) {
    CacheSlot& slot = it->second;
    for (std::size_t vi = 0; vi < slot.variants.size(); ++vi) {
      if (!captures_valid(slot.variants[vi].captures)) {
        continue;
      }
      std::rotate(slot.variants.begin(), slot.variants.begin() + vi,
                  slot.variants.begin() + vi + 1); // MRU within the slot
      lru_.splice(lru_.begin(), lru_, slot.lru_it);
      const auto t0 = std::chrono::steady_clock::now();
      auto plan = replay_plan(slot.variants.front());
      stats_.replay_time_us += elapsed_us(t0);
      ++stats_.cache_hits;
      account_dispatch(*plan->shape);
      return plan;
    }
    // Known shape, but no variant was built under the current location
    // state; the build below adds one (possibly displacing the oldest).
    ++stats_.cache_invalidations;
  }
  ++stats_.cache_misses;

  // Capture the validity oracle BEFORE the build mutates the monitor: a
  // later Invoke hits only if the monitor looks like it does right now.
  auto captures = capture_datums(specs);
  const auto t0 = std::chrono::steady_clock::now();
  auto plan = build_plan(std::move(specs), work, hints, label, splittable);
  stats_.plan_time_us += elapsed_us(t0);
  ++stats_.plans_built;
  auto post_states = capture_post_states(plan->shape->specs, captures);
  cache_insert(std::move(fp), plan->shape, std::move(captures),
               std::move(post_states));
  account_dispatch(*plan->shape);
  return plan;
}

bool Scheduler::overlap_eligible(const std::vector<PatternSpec>& specs) {
  bool halo_input = false;
  for (const auto& s : specs) {
    if (s.seg == Segmentation::PartitionAligned) {
      // Non-unit row scales can map adjacent work strips onto a shared datum
      // row (ceil/floor rounding), so strips would no longer write disjoint
      // rows.
      if (s.row_scale_num != 1 || s.row_scale_den != 1) {
        return false;
      }
    } else if (!(s.is_input && s.seg == Segmentation::Replicate)) {
      return false; // duplicated/custom/single-device segmentation
    }
    if (!s.is_input && s.agg != AggregationKind::None) {
      return false; // aggregating outputs are combined as whole buffers
    }
    if (s.is_input && s.seg == Segmentation::PartitionAligned &&
        (s.radius_low > 0 || s.radius_high > 0)) {
      halo_input = true;
    }
  }
  // Without a windowed input there is no halo traffic to overlap against.
  return halo_input;
}

bool Scheduler::overlap_profitable(
    const std::vector<PatternSpec>& specs) const {
  if (overlap_min_benefit_ <= 0.0) {
    return true;
  }
  // Estimate the halo chain a boundary strip would hide: link latency plus
  // the widest halo over the cheapest inter-device link (conservative — the
  // contended cross-bus path only makes the chain longer). Splitting adds up
  // to two extra kernel launches per device, each paying the launch cost on
  // the compute engine.
  const sim::Topology& topo = node_.topology();
  const sim::Endpoint a = sim::Endpoint::dev(devices_[0]);
  const sim::Endpoint b = devices_.size() > 1 ? sim::Endpoint::dev(devices_[1])
                                              : sim::Endpoint::host();
  double chain_us = 0.0;
  for (const auto& s : specs) {
    if (!s.is_input || s.seg != Segmentation::PartitionAligned ||
        (s.radius_low == 0 && s.radius_high == 0)) {
      continue;
    }
    const std::size_t halo_rows = static_cast<std::size_t>(
        std::max(s.radius_low, s.radius_high));
    const std::size_t bytes =
        halo_rows * s.datum->row_elems() * s.datum->elem_size();
    chain_us = std::max(chain_us, topo.transfer_seconds(a, b, bytes) * 1e6);
  }
  const double extra_launch_us =
      2.0 * node_.spec(devices_[0]).kernel_launch_us;
  return chain_us > overlap_min_benefit_ * extra_launch_us;
}

namespace {
/// Launch stats of a strip covering `frac` of the device's block rows: the
/// work totals scale proportionally, per-launch fixed costs stay.
sim::LaunchStats scale_launch_stats(const sim::LaunchStats& st, double frac) {
  const auto part = [frac](std::uint64_t v) {
    return static_cast<std::uint64_t>(
        std::llround(static_cast<double>(v) * frac));
  };
  sim::LaunchStats out = st;
  out.blocks = std::max<std::uint64_t>(1, part(st.blocks));
  out.flops = part(st.flops);
  out.global_bytes_read = part(st.global_bytes_read);
  out.global_bytes_written = part(st.global_bytes_written);
  out.shared_ops = part(st.shared_ops);
  out.global_atomics = part(st.global_atomics);
  out.shared_atomics = part(st.shared_atomics);
  out.instr_overhead = part(st.instr_overhead);
  return out;
}
} // namespace

void Scheduler::build_strips(
    PlanShape& shape, DevicePlan& dp, int seg,
    const std::vector<SegmentReq>& reqs,
    const std::vector<const MemoryAnalyzer::Alloc*>& allocs,
    const std::vector<StripRange>& ranges) {
  const std::size_t span = shape.partition.rows_per_block_row();
  const std::size_t total =
      shape.partition.block_rows[static_cast<std::size_t>(seg)].size();
  dp.sub.reserve(ranges.size());
  for (const StripRange& r : ranges) {
    SubKernel sub;
    sub.boundary = r.boundary;
    sub.grid = dp.grid;
    sub.grid.block_row_offset = static_cast<unsigned>(r.block_rows.begin);
    sub.grid.block_rows = static_cast<unsigned>(r.block_rows.size());
    const std::size_t w0 = r.block_rows.begin * span;
    const std::size_t w1 =
        std::min(r.block_rows.end * span, shape.partition.work_rows);
    sub.spans.resize(shape.specs.size());
    for (std::size_t i = 0; i < shape.specs.size(); ++i) {
      const PatternSpec& s = shape.specs[i];
      const SegmentReq& req = reqs[i];
      if (!req.active || allocs[i] == nullptr) {
        continue;
      }
      const MemoryAnalyzer::Alloc& alloc = *allocs[i];
      StripSpan& sp = sub.spans[i];
      const long rows = static_cast<long>(s.datum->rows());
      if (s.is_input) {
        if (req.whole || s.seg != Segmentation::PartitionAligned) {
          // Replicated input: every strip reads the whole datum.
          sp.read_local = RowInterval{0, alloc.rows};
          sp.read_global = RowInterval{0, static_cast<std::size_t>(rows)};
          continue;
        }
        // Virtual rows the strip reads (1/1 row scale — enforced by
        // overlap_eligible): its work rows widened by the window radius.
        const long lo = read_span_lo(s, w0);
        const long hi = read_span_hi(s, w1);
        const long l0 = std::max(lo - alloc.origin, 0L);
        const long l1 =
            std::min(hi - alloc.origin, static_cast<long>(alloc.rows));
        sp.read_local = RowInterval{static_cast<std::size_t>(l0),
                                    static_cast<std::size_t>(
                                        std::max(l1, l0))};
        // Rows read at their global position gate on availability; rows read
        // through Wrap/Clamp/Zero halo slots gate on their refill copies
        // (below), which is why clipping to the datum is enough here.
        const long g0 = std::clamp(lo, 0L, rows);
        const long g1 = std::clamp(hi, g0, rows);
        sp.read_global = RowInterval{static_cast<std::size_t>(g0),
                                     static_cast<std::size_t>(g1)};
      } else {
        const RowInterval out = intersect(
            RowInterval{w0, std::min(w1, static_cast<std::size_t>(rows))},
            req.core);
        if (out.empty()) {
          continue;
        }
        sp.out_global = out;
        sp.out_local = RowInterval{
            static_cast<std::size_t>(static_cast<long>(out.begin) -
                                     alloc.origin),
            static_cast<std::size_t>(static_cast<long>(out.end) -
                                     alloc.origin)};
      }
    }
    // Copy gating: the strip waits exactly for the inferred copies (and zero
    // fills) whose destination rows it reads. Chunked copies gate at chunk
    // granularity, so the interior's first rows never wait for a whole
    // segment upload.
    for (std::size_t ci = 0; ci < dp.copies.size(); ++ci) {
      const PlannedCopy& c = dp.copies[ci];
      const StripSpan& sp =
          sub.spans[static_cast<std::size_t>(c.pattern_index)];
      if (!intersect(c.dst_local, sp.read_local).empty()) {
        sub.copy_waits.push_back(static_cast<std::uint32_t>(ci));
      }
    }
    const double frac =
        total == 0 ? 1.0
                   : static_cast<double>(r.block_rows.size()) /
                         static_cast<double>(total);
    sub.stats = scale_launch_stats(dp.stats, frac);
    ++(r.boundary ? shape.boundary_launches : shape.interior_launches);
    dp.sub.push_back(std::move(sub));
  }
}

void Scheduler::wire_strips(const DevicePlan& dp, DeviceWiring& dw,
                            sim::EventId first) {
  dw.strips.resize(dp.sub.size());
  for (std::size_t k = 0; k < dp.sub.size(); ++k) {
    const SubKernel& sub = dp.sub[k];
    StripWiring& sw = dw.strips[k];
    sw.waits.clear();
    sw.waits.reserve(sub.wait_hint);
    // 1. This task's own copies into the strip's read rows.
    for (std::uint32_t ci : sub.copy_waits) {
      const sim::EventId ev = dw.copies[ci].done;
      if (std::find(sw.waits.begin(), sw.waits.end(), ev) == sw.waits.end()) {
        sw.waits.push_back(ev);
      }
    }
    // 2. Availability of the aligned rows the strip reads (earlier kernels/
    //    strips on this device — which may have run on another stream — and
    //    earlier tasks' copies) plus WAR/WAW on the rows it writes.
    for (std::size_t i = 0; i < dp.post.size(); ++i) {
      const PatternPost& post = dp.post[i];
      if (!post.active) {
        continue;
      }
      const StripSpan& sp = sub.spans[i];
      if (post.is_input) {
        if (!sp.read_global.empty()) {
          post.avail->collect(sp.read_global, sw.waits);
        }
      } else if (!sp.out_local.empty()) {
        post.access->collect(sp.out_local, sw.waits);
      }
    }
    sw.done = first + static_cast<sim::EventId>(k);
  }
}

std::shared_ptr<Scheduler::TaskPlan>
Scheduler::build_plan(std::vector<PatternSpec> specs, const Work* work,
                      const CostHints& hints, const char* label,
                      bool splittable) {
  auto plan = std::make_shared<TaskPlan>();
  plan->handle = next_task_++;
  auto shape_owned = std::make_shared<PlanShape>();
  PlanShape& shape = *shape_owned;
  plan->shape = shape_owned;
  shape.specs = std::move(specs);
  shape.overlap = overlap_enabled_;
  planner_.begin_task();
  // Chunks that gate different strips must survive the planner's
  // re-coalescing pass.
  planner_.set_max_coalesce_bytes(overlap_enabled_ ? copy_chunk_bytes_ : 0);

  bool single = work != nullptr && work->single_device;
  for (const auto& s : shape.specs) {
    single = single || s.seg == Segmentation::SingleDevice;
  }
  // Segments [0, slots_eff) map to physical slots through live_; with no
  // device losses the map is the identity and slots_eff == slots().
  const int slots_eff = single ? 1 : live_count();
  shape.partition = derive_partition(shape.specs, work, slots_eff);
  shape.devices.resize(devices_.size());
  plan->wiring.resize(devices_.size());

  // Record requirements first (lazy AnalyzeCall) so allocations cover this
  // task even if the programmer skipped the explicit call.
  std::vector<std::vector<SegmentReq>> reqs(
      static_cast<std::size_t>(slots_eff));
  for (int seg = 0; seg < slots_eff; ++seg) {
    const int slot = live_[static_cast<std::size_t>(seg)];
    for (const auto& s : shape.specs) {
      reqs[static_cast<std::size_t>(seg)].push_back(
          compute_requirement(s, shape.partition, seg));
      analyzer_.record(s, reqs[static_cast<std::size_t>(seg)].back(), slot);
    }
  }

  // A post-loss repartition widens survivor segments, so requirements can
  // legitimately outgrow allocations made under the old live set. With fault
  // tolerance the host mirrors hold every datum, so the stale buffer can be
  // dropped and re-materialized at the new size; without it the analyzer's
  // AnalyzeCall-first contract stands (ensure() throws below).
  if (fault_tolerance_) {
    bool flushed = false;
    for (int seg = 0; seg < slots_eff; ++seg) {
      const int slot = live_[static_cast<std::size_t>(seg)];
      for (const auto& s : shape.specs) {
        if (!analyzer_.needs_grow(s.datum, slot)) {
          continue;
        }
        if (!flushed) {
          // In-flight jobs may still read the buffer being replaced, and
          // cached plans bake its base pointer into their views.
          for (auto& inv : invokers_) {
            inv->flush();
          }
          node_.synchronize();
          stats_.cache_evictions += cache_.size();
          cache_.clear();
          lru_.clear();
          flushed = true;
        }
        analyzer_.grow(s.datum, slot);
        const int loc = SegmentLocationMonitor::loc(slot);
        auto av = avail_.find({s.datum->key(), loc});
        if (av != avail_.end()) {
          av->second = IntervalEventMap{};
        }
        auto ac = access_.find({s.datum->key(), loc});
        if (ac != access_.end()) {
          ac->second = AccessIntervalMap{};
        }
        monitor_.drop_holdings(s.datum, loc);
        if (sanitizer_) {
          sanitizer_->on_holdings_dropped(s.datum, loc);
        }
      }
    }
  }

  // Out-of-core residency: make room for this task's datums under the
  // device-memory budget before ensure() materializes them (DESIGN.md §5.16).
  // streaming_required() already diverted tasks whose own working set cannot
  // fit, so eviction of colder residents always suffices here (or throws).
  if (device_memory_budget_ > 0) {
    enforce_budget(shape.specs, slots_eff);
  }

  // Interior/boundary splitting: structurally eligible shapes pass the cost
  // gate once per task; the per-device strip geometry still depends on each
  // slot's block rows (a thin segment may have no interior at all).
  const bool try_split = splittable && overlap_enabled_ && slots_eff > 1 &&
                         overlap_eligible(shape.specs) &&
                         overlap_profitable(shape.specs);

  for (int seg = 0; seg < slots_eff; ++seg) {
    const int slot = live_[static_cast<std::size_t>(seg)];
    DevicePlan& dp = shape.devices[static_cast<std::size_t>(slot)];
    DeviceWiring& dw = plan->wiring[static_cast<std::size_t>(slot)];
    const auto& slot_reqs = reqs[static_cast<std::size_t>(seg)];
    dp.active = std::any_of(slot_reqs.begin(), slot_reqs.end(),
                            [](const SegmentReq& r) { return r.active; });
    if (!dp.active) {
      continue;
    }
    ++shape.active_slots;

    const std::vector<StripRange> strip_ranges =
        try_split ? compute_strips(shape.specs, shape.partition, seg,
                                   slot_reqs)
                  : std::vector<StripRange>{};
    const bool split = strip_ranges.size() >= 2;
    std::vector<const MemoryAnalyzer::Alloc*> allocs(shape.specs.size(),
                                                     nullptr);

    // Grid context: the multiple-device abstraction (§4, Fig 1b). The grid
    // sees SEGMENT coordinates (device = seg, device_count = slots_eff), so
    // a kernel's per-device sweep is a pure function of the partition — the
    // physical slot it lands on is invisible, which keeps post-loss
    // re-execution bit-identical.
    dp.grid.grid_dim = maps::Dim3{
        static_cast<unsigned>(shape.partition.blocks_x),
        static_cast<unsigned>(shape.partition.blocks_y), 1};
    dp.grid.block_dim = shape.partition.block_dim;
    dp.grid.block_row_offset = static_cast<unsigned>(
        shape.partition.block_rows[static_cast<std::size_t>(seg)].begin);
    dp.grid.block_rows = static_cast<unsigned>(
        shape.partition.block_rows[static_cast<std::size_t>(seg)].size());
    dp.grid.device = seg;
    dp.grid.device_count = slots_eff;
    dp.grid.work_width = static_cast<unsigned>(shape.partition.work_cols);
    dp.grid.work_height = static_cast<unsigned>(shape.partition.work_rows);
    dp.grid.ilp_x = shape.partition.ilp_x;
    dp.grid.ilp_y = shape.partition.ilp_y;

    // Allocations, views, transfers.
    for (std::size_t i = 0; i < shape.specs.size(); ++i) {
      const PatternSpec& s = shape.specs[i];
      const SegmentReq& req = slot_reqs[i];
      if (!req.active) {
        dp.views.emplace_back();
        dp.params.emplace_back();
        dp.segments.emplace_back();
        dp.post.emplace_back();
        continue;
      }
      const auto& alloc = analyzer_.ensure(s.datum, slot);
      allocs[i] = &alloc;

      DeviceView view;
      view.base = alloc.buffer->data();
      view.pitch = alloc.row_bytes;
      view.origin = alloc.origin;
      view.rows = alloc.rows;
      view.row_elems = s.datum->row_elems();
      view.datum_rows = s.datum->rows();
      view.core_begin = req.core.begin;
      view.core_end = req.core.end;
      dp.views.push_back(view);

      RoutineParam param;
      param.buffer = alloc.buffer;
      param.byte_offset = alloc.row_offset(static_cast<long>(req.core.begin));
      param.view = view;
      dp.params.push_back(param);

      Segment seg;
      seg.global_row_begin = req.core.begin;
      seg.global_row_end = req.core.end;
      seg.m_dimensions = s.datum->dims();
      seg.m_dimensions[0] = req.core.size();
      dp.segments.push_back(std::move(seg));

      PatternPost post;
      post.active = true;
      post.is_input = s.is_input;
      post.private_copy = req.private_copy;
      post.datum = s.datum;
      post.core = req.core;
      post.core_local = RowInterval{
          static_cast<std::size_t>(static_cast<long>(req.core.begin) -
                                   alloc.origin),
          static_cast<std::size_t>(static_cast<long>(req.core.end) -
                                   alloc.origin)};
      post.produced =
          req.private_copy ? RowInterval{0, s.datum->rows()} : req.core;
      post.local_span = RowInterval{0, alloc.rows};
      post.avail =
          &avail_[{s.datum->key(), SegmentLocationMonitor::loc(slot)}];
      post.access =
          &access_[{s.datum->key(), SegmentLocationMonitor::loc(slot)}];
      if (s.is_input) {
        split_read_rows(req, post.reads, post.halo_reads);
      }
      dp.post.push_back(post);

      plan_copies_for(shape, dw, slot, static_cast<int>(i), req, alloc);

      if (!s.is_input) {
        if (!split) {
          // WAR/WAW: the kernel overwrites these local rows. (Split devices
          // collect this per strip in wire_strips.)
          dp.post[i].access->collect(dp.post[i].core_local, dw.kernel_waits);
        }
      } else if (shape.overlap && !split) {
        // With overlap on, earlier tasks' boundary strips may have produced
        // input rows on a different stream of this device, so compute-stream
        // order alone no longer covers same-device RAW — wait on the rows'
        // availability events explicitly (a no-op cost when the producer was
        // this stream: collect() dedups against the copies already listed).
        for (const RowInterval& iv : dp.post[i].reads) {
          dp.post[i].avail->collect(iv, dw.kernel_waits);
        }
      }
    }

    dp.stats = task_launch_stats(shape.specs, shape.partition, seg, hints,
                                 label);
    if (split) {
      build_strips(shape, dp, seg, slot_reqs, allocs, strip_ranges);
      wire_strips(dp, dw, node_.create_events(static_cast<int>(dp.sub.size())));
      for (std::size_t k = 0; k < dp.sub.size(); ++k) {
        dp.sub[k].wait_hint =
            static_cast<std::uint32_t>(dw.strips[k].waits.size());
      }
    } else {
      // Kernel dependencies: every one of this task's incoming copies/fills
      // on this device, plus — for outputs — every previous reader/writer of
      // the written rows (WAR/WAW; collected in the pattern loop above).
      // Input data produced by earlier kernels on this device is ordered by
      // the compute stream itself (explicit availability waits cover strip
      // producers when overlap is on), and earlier tasks' incoming copies
      // are covered transitively (their kernels waited on them).
      for (const CopyWiring& w : dw.copies) {
        if (std::find(dw.kernel_waits.begin(), dw.kernel_waits.end(),
                      w.done) == dw.kernel_waits.end()) {
          dw.kernel_waits.push_back(w.done);
        }
      }
      dw.kernel_done = node_.create_event();
    }

    dp.wait_pool_hint = static_cast<std::uint32_t>(dw.wait_pool.size());
    dp.kernel_wait_hint = static_cast<std::uint32_t>(dw.kernel_waits.size());
  }

  // Post-kernel location state (the actual commands are enqueued by the
  // invoker threads; the monitor reflects the state after the task).
  for (int seg = 0; seg < slots_eff; ++seg) {
    const int slot = live_[static_cast<std::size_t>(seg)];
    if (shape.devices[static_cast<std::size_t>(slot)].active) {
      commit_post_state(shape.devices[static_cast<std::size_t>(slot)],
                        plan->wiring[static_cast<std::size_t>(slot)], slot,
                        /*update_monitor=*/true);
    }
  }
  commit_aggregations(shape, /*update_monitor=*/true);

  return plan;
}

std::shared_ptr<Scheduler::TaskPlan> Scheduler::acquire_replay_plan() {
  if (plan_recycle_local_.empty()) {
    // Take the whole retired stack in one atomic exchange (single-consumer,
    // so no ABA concern) and unlink it into the local list.
    TaskPlan* head =
        plan_recycle_head_.exchange(nullptr, std::memory_order_acquire);
    while (head != nullptr) {
      TaskPlan* next = head->recycle_next;
      plan_recycle_local_.emplace_back(head);
      head = next;
    }
  }
  TaskPlan* raw = nullptr;
  if (!plan_recycle_local_.empty()) {
    raw = plan_recycle_local_.back().release();
    plan_recycle_local_.pop_back();
  } else {
    raw = new TaskPlan();
  }
  // The deleter runs wherever the last reference dies — usually an invoker
  // thread after it enqueued the task's commands. ~Scheduler drains the
  // invokers before the recycle members are destroyed, so `this` outlives
  // every deleter invocation.
  return std::shared_ptr<TaskPlan>(raw, [this](TaskPlan* p) {
    p->recycle_next = plan_recycle_head_.load(std::memory_order_relaxed);
    while (!plan_recycle_head_.compare_exchange_weak(
        p->recycle_next, p, std::memory_order_release,
        std::memory_order_relaxed)) {
    }
  });
}

std::shared_ptr<Scheduler::TaskPlan>
Scheduler::replay_plan(const CacheEntry& entry) {
  // The cached shape is immutable and shared; only the event wiring is
  // rebuilt, against the CURRENT avail_/access_ state, in exactly the order
  // the build would have produced it. The location monitor is not touched
  // until the end, where the captured post-state is restored wholesale.
  std::shared_ptr<TaskPlan> plan = acquire_replay_plan();
  plan->shape = entry.shape;
  plan->handle = next_task_++;
  const PlanShape& sh = *plan->shape;
  plan->wiring.resize(sh.devices.size());

  // One lock, one block of event ids for every copy and kernel/strip.
  int n_events = 0;
  for (const DevicePlan& dp : sh.devices) {
    if (dp.active) {
      n_events += static_cast<int>(dp.copies.size()) +
                  (dp.sub.empty() ? 1 : static_cast<int>(dp.sub.size()));
    }
  }
  sim::EventId next_event = node_.create_events(n_events);

  for (std::size_t slot = 0; slot < sh.devices.size(); ++slot) {
    const DevicePlan& dp = sh.devices[slot];
    if (!dp.active) {
      continue;
    }
    DeviceWiring& dw = plan->wiring[slot];
    dw.wait_pool.clear();
    dw.wait_pool.reserve(dp.wait_pool_hint);
    dw.kernel_waits.clear();
    dw.kernel_waits.reserve(dp.kernel_wait_hint);
    dw.copies.resize(dp.copies.size());
    dw.strips.clear(); // recycled wiring may carry another plan's strips
    // Copies are stored in pattern order; interleave wiring with the
    // per-pattern wait collection, mirroring build_plan.
    std::size_t ci = 0;
    for (std::size_t i = 0; i < sh.specs.size(); ++i) {
      while (ci < dp.copies.size() &&
             dp.copies[ci].pattern_index == static_cast<int>(i)) {
        wire_copy(dp.copies[ci], dw, dw.copies[ci], next_event++,
                  /*update_monitor=*/false);
        ++ci;
      }
      const PatternPost& post = dp.post[i];
      if (!post.active || !dp.sub.empty()) {
        continue; // split devices collect per strip in wire_strips
      }
      if (!post.is_input) {
        post.access->collect(post.core_local, dw.kernel_waits);
      } else if (sh.overlap) {
        for (const RowInterval& iv : post.reads) {
          post.avail->collect(iv, dw.kernel_waits);
        }
      }
    }
    if (!dp.sub.empty()) {
      wire_strips(dp, dw, next_event);
      next_event += static_cast<sim::EventId>(dp.sub.size());
    } else {
      for (const CopyWiring& w : dw.copies) {
        if (std::find(dw.kernel_waits.begin(), dw.kernel_waits.end(),
                      w.done) == dw.kernel_waits.end()) {
          dw.kernel_waits.push_back(w.done);
        }
      }
      dw.kernel_done = next_event++;
    }
  }

  for (std::size_t slot = 0; slot < sh.devices.size(); ++slot) {
    if (sh.devices[slot].active) {
      commit_post_state(sh.devices[slot], plan->wiring[slot],
                        static_cast<int>(slot), /*update_monitor=*/false);
    }
  }
  for (const DatumPostState& ps : entry.post_state) {
    monitor_.restore_state(ps.datum, ps.state);
  }
  commit_aggregations(sh, /*update_monitor=*/false);
  return plan;
}

void Scheduler::enqueue_device_commands(
    std::shared_ptr<TaskPlan> plan, int slot,
    std::vector<std::function<void()>> bodies, UnmodifiedRoutine routine,
    void* context,
    std::shared_ptr<std::vector<std::vector<std::byte>>> consts,
    bool copies_only) {
  const DevicePlan& dp = plan->shape->devices[static_cast<std::size_t>(slot)];
  const DeviceWiring& dw = plan->wiring[static_cast<std::size_t>(slot)];
  const sim::StreamId copy_stream = copy_streams_[static_cast<std::size_t>(slot)];
  const sim::StreamId compute_stream =
      compute_streams_[static_cast<std::size_t>(slot)];

  // Copies spread over the device's two copy streams so independent
  // transfers exploit both copy engines (§2: "multiple memory copy engines
  // that allow simultaneous two-way memory transfer"). Balancing by bytes
  // rather than alternating by index keeps the engines evenly loaded when
  // coalescing leaves transfers of very different sizes.
  std::uint64_t stream_bytes[2] = {0, 0};
  for (std::size_t i = 0; i < dp.copies.size(); ++i) {
    const PlannedCopy& c = dp.copies[i];
    const CopyWiring& w = dw.copies[i];
    const int si = stream_bytes[0] <= stream_bytes[1] ? 0 : 1;
    stream_bytes[si] += c.bytes;
    const sim::StreamId cs =
        si == 0 ? copy_stream : copy_streams2_[static_cast<std::size_t>(slot)];
    for (std::uint32_t k = w.wait_begin; k < w.wait_end; ++k) {
      node_.wait_event_generation(cs, dw.wait_pool[k], 1);
    }
    if (w.dropped) {
      // Fault injection: the transfer silently never happens, but its done
      // event still fires so downstream commands are not deadlocked — the
      // data is simply stale, exactly like a missed inferred copy.
      node_.record_event(w.done, cs);
      continue;
    }
    if (c.zero_fill) {
      node_.memset_device(cs, c.dst_buffer, c.dst_offset, 0, c.bytes);
    } else if (c.src_host != nullptr) {
      node_.memcpy_h2d(cs, c.dst_buffer, c.dst_offset, c.src_host, c.bytes);
    } else if ((force_host_staged_ || c.via_host) &&
               c.src_buffer->device() != c.dst_buffer->device()) {
      node_.memcpy_p2p_host_staged(cs, c.dst_buffer, c.dst_offset,
                                   c.src_buffer, c.src_offset, c.bytes);
    } else {
      node_.memcpy_p2p(cs, c.dst_buffer, c.dst_offset, c.src_buffer,
                       c.src_offset, c.bytes);
    }
    node_.record_event(w.done, cs);
  }

  if (copies_only) {
    // CopiesIssued device loss: the victim received its inferred inputs but
    // never launched. Its kernel_done / strip events are left unrecorded —
    // recovery resets the victim's ordering maps before any survivor could
    // collect them, so nothing ever waits on the missing events.
    return;
  }

  if (!dp.sub.empty()) {
    // Split device: the interior strip launches on the compute stream the
    // moment its (non-halo) dependencies clear; boundary strips go to the
    // dedicated boundary stream so their halo-copy waits never block the
    // interior's launch. All strips share the device's compute engine, so
    // the simulator serializes the actual execution.
    for (std::size_t k = 0; k < dp.sub.size(); ++k) {
      const SubKernel& sub = dp.sub[k];
      const StripWiring& sw = dw.strips[k];
      const sim::StreamId stream =
          sub.boundary ? boundary_streams_[static_cast<std::size_t>(slot)]
                       : compute_stream;
      for (sim::EventId ev : sw.waits) {
        node_.wait_event_generation(stream, ev, 1);
      }
      node_.launch(stream, sub.stats, std::move(bodies[k]));
      node_.record_event(sw.done, stream);
    }
    return;
  }

  for (sim::EventId ev : dw.kernel_waits) {
    node_.wait_event_generation(compute_stream, ev, 1);
  }
  if (routine) {
    RoutineArgs args;
    args.node = &node_;
    args.device_idx = slot;
    args.sim_device = devices_[static_cast<std::size_t>(slot)];
    args.stream = compute_stream;
    args.context = context;
    args.parameters = dp.params;
    args.container_segments = dp.segments;
    args.constants = *consts;
    if (!routine(args)) {
      throw std::runtime_error("unmodified routine reported failure");
    }
  } else {
    node_.launch(compute_stream, dp.stats, std::move(bodies.front()));
  }
  node_.record_event(dw.kernel_done, compute_stream);
}

void Scheduler::set_sanitizer_enabled(bool on) {
  if (!on) {
    sanitizer_.reset();
    return;
  }
  if (sanitizer_ != nullptr) {
    return;
  }
  if (tasks_scheduled() != 0) {
    throw std::logic_error(
        "Scheduler: enable the access sanitizer before scheduling tasks (the "
        "shadow version map must observe every task from the first)");
  }
  sanitizer_ = std::make_unique<AccessSanitizer>(slots());
}

void Scheduler::reset_stats() {
  stats_ = SchedulerStats{};
  stats_.exec.threads = exec_threads_;
  if (exec_backend_ != nullptr) {
    exec_backend_->pool().reset_stats();
  }
  if (sanitizer_ != nullptr) {
    sanitizer_->reset_stats();
  }
}

// --- Out-of-core execution (DESIGN.md §5.16) ---------------------------------

void Scheduler::set_device_memory_budget(std::size_t bytes) {
  if (bytes == device_memory_budget_) {
    return;
  }
  if (tasks_scheduled() != 0) {
    // Mid-chain budget change: cached plans bake in residency decisions made
    // under the old budget, and in-flight jobs may reference buffers the new
    // policy is about to evict — quiesce and drop the cache wholesale.
    for (auto& inv : invokers_) {
      inv->flush();
    }
    node_.synchronize();
    stats_.cache_evictions += cache_.size();
    cache_.clear();
    lru_.clear();
  }
  device_memory_budget_ = bytes;
}

bool Scheduler::streaming_required(const std::vector<PatternSpec>& specs,
                                   const Work* work) {
  if (device_memory_budget_ == 0 || specs.empty()) {
    return false;
  }
  bool single = work != nullptr && work->single_device;
  for (const auto& s : specs) {
    monitor_.register_datum(s.datum);
    single = single || s.seg == Segmentation::SingleDevice;
  }
  const int slots_eff = single ? 1 : live_count();
  const TaskPartition partition = derive_partition(specs, work, slots_eff);
  // Per-slot working set of THIS task alone: the bounding-box bytes ensure()
  // would materialize per referenced datum — the hull of the task's
  // requirements with any previously recorded plan. Computed without touching
  // the analyzer: the decision must be free of side effects on slots a
  // subsequent placement pass may re-map.
  for (int seg = 0; seg < slots_eff; ++seg) {
    const int slot = live_[static_cast<std::size_t>(seg)];
    struct Hull {
      long origin = 0;
      long end = 0;
      std::size_t tail = 0;
      std::size_t row_bytes = 0;
    };
    std::vector<std::pair<const void*, Hull>> hulls;
    for (const auto& s : specs) {
      const SegmentReq req = compute_requirement(s, partition, seg);
      if (!req.active) {
        continue;
      }
      long origin = req.origin;
      long end = req.origin + static_cast<long>(req.local_rows);
      std::size_t tail = s.agg == AggregationKind::MaskedMerge
                             ? s.datum->rows() * s.datum->row_elems()
                             : 0;
      if (const auto* plan = analyzer_.plan(s.datum, slot)) {
        origin = std::min(origin, plan->origin);
        end = std::max(end, plan->end);
        tail = std::max(tail, plan->extra_tail_bytes);
      }
      auto it = std::find_if(
          hulls.begin(), hulls.end(),
          [&](const auto& h) { return h.first == s.datum->key(); });
      if (it == hulls.end()) {
        hulls.emplace_back(s.datum->key(),
                           Hull{origin, end, tail, s.datum->row_bytes()});
      } else {
        it->second.origin = std::min(it->second.origin, origin);
        it->second.end = std::max(it->second.end, end);
        it->second.tail = std::max(it->second.tail, tail);
      }
    }
    std::size_t working = 0;
    for (const auto& [key, h] : hulls) {
      working +=
          static_cast<std::size_t>(h.end - h.origin) * h.row_bytes + h.tail;
    }
    if (working > device_memory_budget_) {
      return true;
    }
  }
  return false;
}

void Scheduler::enforce_budget(const std::vector<PatternSpec>& specs,
                               int slots_eff) {
  bool quiesced = false;
  for (int seg = 0; seg < slots_eff; ++seg) {
    const int slot = live_[static_cast<std::size_t>(seg)];
    // Bytes on this slot once the task's datums materialize: current
    // residents plus the planned size of every referenced datum that has no
    // buffer yet (build_plan recorded the requirements just above).
    std::vector<const void*> task_keys;
    std::size_t after = 0;
    for (const auto& s : specs) {
      if (std::find(task_keys.begin(), task_keys.end(), s.datum->key()) !=
          task_keys.end()) {
        continue;
      }
      task_keys.push_back(s.datum->key());
      if (analyzer_.find(s.datum, slot) == nullptr) {
        after += analyzer_.planned_bytes(s.datum, slot);
      }
    }
    for (const auto& r : analyzer_.resident(slot)) {
      after += r.alloc->buffer->size();
    }
    if (after <= device_memory_budget_) {
      continue;
    }
    // LRU eviction over residents the task does not reference. Pending
    // aggregation partials are pinned (their rows are valid nowhere else,
    // and written back as global rows they would corrupt the datum), as are
    // unbound datums (no host buffer to spill into). resident() is
    // name-sorted, so the stable_sort's tie-break is deterministic — the
    // pinned eviction counters in the tests rely on that.
    struct Cand {
      const Datum* datum;
      std::size_t bytes;
      std::uint64_t touch;
    };
    std::vector<Cand> cands;
    for (const auto& r : analyzer_.resident(slot)) {
      if (std::find(task_keys.begin(), task_keys.end(), r.datum->key()) !=
          task_keys.end()) {
        continue;
      }
      if (monitor_.pending_aggregation(r.datum) != nullptr ||
          !r.datum->bound()) {
        continue;
      }
      const auto t = last_touch_.find({r.datum->key(), slot});
      cands.push_back({r.datum, r.alloc->buffer->size(),
                       t == last_touch_.end() ? 0 : t->second});
    }
    std::stable_sort(cands.begin(), cands.end(),
                     [](const Cand& a, const Cand& b) {
                       return a.touch < b.touch;
                     });
    for (const Cand& c : cands) {
      if (after <= device_memory_budget_) {
        break;
      }
      spill_allocation(c.datum, slot, quiesced);
      after -= c.bytes;
    }
    if (after > device_memory_budget_) {
      throw OutOfCoreError(
          "out-of-core: slot " + std::to_string(slot) + " needs " +
          std::to_string(after) + " bytes against a device memory budget of " +
          std::to_string(device_memory_budget_) +
          " bytes and nothing more can be evicted (the remaining residents "
          "are the task's own datums, pending aggregation partials, or "
          "unbound data) — raise the budget or Gather pending partials "
          "first");
    }
  }
}

void Scheduler::spill_allocation(const Datum* datum, int slot,
                                 bool& quiesced) {
  if (!quiesced) {
    // In-flight jobs may reference the buffer being freed, and cached plans
    // bake in residency this eviction invalidates.
    for (auto& inv : invokers_) {
      inv->flush();
    }
    node_.synchronize();
    stats_.cache_evictions += cache_.size();
    cache_.clear();
    lru_.clear();
    quiesced = true;
  }
  const auto* alloc = analyzer_.find(datum, slot);
  if (alloc == nullptr) {
    return;
  }
  const int loc = SegmentLocationMonitor::loc(slot);
  // Snapshot before the write-back loop mutates the monitor.
  const IntervalSet held = monitor_.up_to_date(datum, loc);
  const IntervalSet& host =
      monitor_.up_to_date(datum, SegmentLocationMonitor::kHost);
  const std::size_t row_bytes = datum->row_bytes();
  const sim::StreamId stream = copy_streams2_[static_cast<std::size_t>(slot)];
  for (const RowInterval& iv : held.intervals()) {
    for (const RowInterval& dirty : host.missing_from(iv)) {
      // Rows valid only on this device: write them back before freeing.
      if (!datum->bound()) {
        throw OutOfCoreError("out-of-core: datum '" + datum->name() +
                             "' holds device-only rows but has no bound host "
                             "buffer to spill into");
      }
      const std::size_t bytes = dirty.size() * row_bytes;
      node_.memcpy_d2h(stream, datum->host_row(dirty.begin), alloc->buffer,
                       alloc->row_offset(static_cast<long>(dirty.begin)),
                       bytes);
      ++stats_.spill.transfers.copies_issued;
      TransferPlanner::account(
          stats_.spill.transfers, node_.topology(),
          sim::Endpoint::dev(devices_[static_cast<std::size_t>(slot)]),
          sim::Endpoint::host(), false, bytes);
      stats_.spill.bytes_spilled += bytes;
      monitor_.mark_copied(datum, SegmentLocationMonitor::kHost, dirty);
      if (sanitizer_ != nullptr) {
        sanitizer_->on_copy(datum, loc, SegmentLocationMonitor::kHost, dirty);
      }
      ++host_content_stamp_[datum->key()];
    }
  }
  // The holdings become "spilled": the refill classifier in plan_copies_for
  // recognizes copies that restore exactly these rows.
  for (const RowInterval& iv : held.intervals()) {
    monitor_.mark_spilled(datum, loc, iv);
  }
  if (sanitizer_ != nullptr) {
    sanitizer_->on_holdings_dropped(datum, loc);
  }
  auto av = avail_.find({datum->key(), loc});
  if (av != avail_.end()) {
    av->second = IntervalEventMap{};
  }
  auto ac = access_.find({datum->key(), loc});
  if (ac != access_.end()) {
    ac->second = AccessIntervalMap{};
  }
  // The write-backs above must land before the buffer is freed.
  node_.synchronize();
  analyzer_.evict(datum, slot);
  ++stats_.spill.evictions;
}

void Scheduler::flush_datum_to_host(Datum* datum) {
  const auto ops = monitor_.plan_copies(
      datum, SegmentLocationMonitor::kHost, RowInterval{0, datum->rows()});
  const std::size_t row_bytes = datum->row_bytes();
  for (const auto& op : ops) {
    if (op.src_location == SegmentLocationMonitor::kHost || op.rows.empty()) {
      continue;
    }
    const int src_slot = op.src_location - 1;
    const auto* alloc = analyzer_.find(datum, src_slot);
    if (alloc == nullptr) {
      throw std::logic_error(
          "out-of-core: monitor holds rows of datum '" + datum->name() +
          "' on a slot with no allocation");
    }
    const std::size_t bytes = op.rows.size() * row_bytes;
    node_.memcpy_d2h(copy_streams2_[static_cast<std::size_t>(src_slot)],
                     datum->host_row(op.rows.begin), alloc->buffer,
                     alloc->row_offset(static_cast<long>(op.rows.begin)),
                     bytes);
    ++stats_.spill.transfers.copies_issued;
    TransferPlanner::account(
        stats_.spill.transfers, node_.topology(),
        sim::Endpoint::dev(devices_[static_cast<std::size_t>(src_slot)]),
        sim::Endpoint::host(), false, bytes);
    stats_.spill.bytes_spilled += bytes;
    monitor_.mark_copied(datum, SegmentLocationMonitor::kHost, op.rows);
    if (sanitizer_ != nullptr) {
      sanitizer_->on_copy(datum, op.src_location,
                          SegmentLocationMonitor::kHost, op.rows);
    }
    ++host_content_stamp_[datum->key()];
  }
}

TaskHandle Scheduler::dispatch_streamed(
    std::vector<PatternSpec> specs, const Work* work, const CostHints& hints,
    const char* label, const BodyFactory& factory, UnmodifiedRoutine routine,
    void* context, std::vector<std::vector<std::byte>> consts) {
  // Structural guards: shapes the window decomposition cannot stream. Each
  // failure names its cause — the edge-case tests pin these diagnostics.
  for (const auto& s : specs) {
    monitor_.register_datum(s.datum);
    if (s.custom_rows) {
      throw OutOfCoreError(
          "out-of-core: task '" + std::string(label) +
          "' uses a CustomAligned row mapping — windows must be a pure "
          "function of the partition, so it cannot be streamed; raise the "
          "device memory budget");
    }
    if (!s.datum->bound()) {
      throw OutOfCoreError("out-of-core: datum '" + s.datum->name() +
                           "' needs a bound host buffer to stream through");
    }
    if (!s.is_input && s.agg != AggregationKind::None &&
        s.agg != AggregationKind::Sum) {
      throw OutOfCoreError(
          "out-of-core: task '" + std::string(label) +
          "' has a dynamic (Append/MaskedMerge) output — its size is not a "
          "function of the partition, so it cannot be streamed; raise the "
          "device memory budget");
    }
    if (s.is_input && monitor_.pending_aggregation(s.datum) != nullptr) {
      throw OutOfCoreError("out-of-core: input datum '" + s.datum->name() +
                           "' has a pending aggregation — Gather it before a "
                           "streamed task can read it");
    }
  }
  for (const auto& out : specs) {
    if (out.is_input) {
      continue;
    }
    if (out.agg == AggregationKind::None &&
        (out.row_scale_num != 1 || out.row_scale_den != 1)) {
      throw OutOfCoreError(
          "out-of-core: task '" + std::string(label) +
          "' writes through a non-unit row scale — window drains would not "
          "tile the output; raise the device memory budget");
    }
    for (const auto& in : specs) {
      if (!in.is_input || in.datum->key() != out.datum->key()) {
        continue;
      }
      if (in.radius_low > 0 || in.radius_high > 0) {
        throw OutOfCoreError(
            "out-of-core: task '" + std::string(label) +
            "' updates datum '" + out.datum->name() +
            "' in place with a window radius — a later window would read "
            "host rows an earlier window already overwrote; raise the "
            "device memory budget");
      }
    }
  }

  // Streamed tasks run synchronously against a drained node: in-flight jobs
  // may reference buffers evicted below, and cached plans bake in residency
  // the streaming pass is about to change.
  for (auto& inv : invokers_) {
    inv->flush();
  }
  node_.synchronize();
  stats_.cache_evictions += cache_.size();
  cache_.clear();
  lru_.clear();
  bool quiesced = true;

  // LRU recency, mirroring plan_task.
  {
    const std::uint64_t stamp = ++touch_counter_;
    for (const auto& s : specs) {
      for (int slot : live_) {
        last_touch_[{s.datum->key(), slot}] = stamp;
      }
    }
  }

  const TaskHandle handle = next_task_++;
  ++stats_.spill.streamed_tasks;
  if (sanitizer_ != nullptr) {
    sanitizer_->begin_context(handle, label);
  }

  bool single = work != nullptr && work->single_device;
  for (const auto& s : specs) {
    single = single || s.seg == Segmentation::SingleDevice;
  }
  const int slots_eff = single ? 1 : live_count();
  // Streamed tasks keep the current segment→slot order: windows of one
  // segment run entirely on one device, so placement has no halo crossing
  // to remove.
  const TaskPartition partition = derive_partition(specs, work, slots_eff);
  const std::size_t span = partition.rows_per_block_row();
  const std::size_t work_rows = partition.work_rows;

  std::vector<std::vector<SegmentReq>> reqs(
      static_cast<std::size_t>(slots_eff));
  int active_segs = 0;
  for (int seg = 0; seg < slots_eff; ++seg) {
    const int slot = live_[static_cast<std::size_t>(seg)];
    bool any = false;
    for (const auto& s : specs) {
      reqs[static_cast<std::size_t>(seg)].push_back(
          compute_requirement(s, partition, seg));
      analyzer_.record(s, reqs[static_cast<std::size_t>(seg)].back(), slot);
      any = any || reqs[static_cast<std::size_t>(seg)].back().active;
    }
    if (any) {
      ++active_segs;
    }
  }
  node_.advance_host_us(task_overhead_us_ +
                        per_device_overhead_us_ * active_segs);

  // Sum outputs must be whole-datum duplicates (the same invariant the
  // in-core reductive path relies on): each slot then accumulates its
  // private partial across its windows in ascending block-row order — the
  // same sweep order as the unsplit kernel, which is what keeps float
  // partials bit-identical.
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].is_input || specs[i].agg != AggregationKind::Sum) {
      continue;
    }
    for (int seg = 0; seg < slots_eff; ++seg) {
      const SegmentReq& r = reqs[static_cast<std::size_t>(seg)][i];
      if (r.active && !r.whole) {
        throw OutOfCoreError(
            "out-of-core: Sum output datum '" + specs[i].datum->name() +
            "' is not duplicated whole — partitioned reductive outputs "
            "cannot be streamed");
      }
    }
  }

  // 1. Make the host authoritative for every input: windows read host rows
  // directly, and the flush itself is spill traffic.
  {
    std::vector<const void*> flushed;
    for (const auto& s : specs) {
      if (!s.is_input || std::find(flushed.begin(), flushed.end(),
                                   s.datum->key()) != flushed.end()) {
        continue;
      }
      flushed.push_back(s.datum->key());
      flush_datum_to_host(s.datum);
    }
    node_.synchronize();
  }

  // 2. Clear residency on every active slot: windowed datums stream through
  // transient buffers, and colder residents make room for the persistent
  // set. Whole-requirement datums stay resident unless their recorded plan
  // outgrew the existing buffer. Dirty rows were flushed above, so these
  // evictions write back nothing for this task's own inputs.
  std::vector<std::size_t> unevictable(static_cast<std::size_t>(slots_eff),
                                       0);
  for (int seg = 0; seg < slots_eff; ++seg) {
    const int slot = live_[static_cast<std::size_t>(seg)];
    const auto& sreqs = reqs[static_cast<std::size_t>(seg)];
    std::vector<const void*> keep;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (sreqs[i].active && sreqs[i].whole &&
          !analyzer_.needs_grow(specs[i].datum, slot)) {
        keep.push_back(specs[i].datum->key());
      }
    }
    const auto residents = analyzer_.resident(slot);
    for (const auto& r : residents) {
      if (std::find(keep.begin(), keep.end(), r.datum->key()) != keep.end()) {
        continue;
      }
      if (monitor_.pending_aggregation(r.datum) != nullptr ||
          !r.datum->bound()) {
        unevictable[static_cast<std::size_t>(seg)] += r.alloc->buffer->size();
        continue;
      }
      spill_allocation(r.datum, slot, quiesced);
    }
  }

  // 3. Per-segment streamed passes.
  std::vector<sim::Buffer*> temps;
  for (int seg = 0; seg < slots_eff; ++seg) {
    const int slot = live_[static_cast<std::size_t>(seg)];
    const auto& sreqs = reqs[static_cast<std::size_t>(seg)];
    const RowInterval sblocks =
        partition.block_rows[static_cast<std::size_t>(seg)];
    const std::size_t nblocks = sblocks.size();
    bool any = false;
    for (const auto& r : sreqs) {
      any = any || r.active;
    }
    if (!any || nblocks == 0) {
      continue;
    }
    const sim::StreamId cs = copy_streams_[static_cast<std::size_t>(slot)];
    const sim::StreamId ks = compute_streams_[static_cast<std::size_t>(slot)];
    const sim::StreamId ds = copy_streams2_[static_cast<std::size_t>(slot)];
    const int loc = SegmentLocationMonitor::loc(slot);

    // 3a. Persistent (window-invariant) residents: replicated inputs and
    // whole-datum reductive partials.
    std::size_t persistent_bytes = unevictable[static_cast<std::size_t>(seg)];
    std::vector<const MemoryAnalyzer::Alloc*> wallocs(specs.size(), nullptr);
    std::vector<const void*> filled;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const SegmentReq& req = sreqs[i];
      if (!req.active || !req.whole) {
        continue;
      }
      const auto& alloc = analyzer_.ensure(specs[i].datum, slot);
      wallocs[i] = &alloc;
      const Datum* d = specs[i].datum;
      if (std::find(filled.begin(), filled.end(), d->key()) != filled.end()) {
        continue;
      }
      filled.push_back(d->key());
      persistent_bytes += alloc.buffer->size();
      for (const CopyRegion& region : req.input_regions) {
        if (region.zero_fill) {
          // Reductive partial: fresh zeros every task, like the in-core
          // zero-fill copy.
          node_.memset_device(cs, alloc.buffer, 0, 0, alloc.buffer->size());
          continue;
        }
        // Upload only what the device does not already hold — kept
        // residents stay warm across a task chain.
        for (const RowInterval& miss :
             monitor_.up_to_date(d, loc).missing_from(region.global)) {
          const long local = region.local_row +
                             static_cast<long>(miss.begin) -
                             static_cast<long>(region.global.begin) +
                             (req.origin - alloc.origin);
          const std::size_t bytes = miss.size() * alloc.row_bytes;
          node_.memcpy_h2d(cs, alloc.buffer,
                           static_cast<std::size_t>(local) * alloc.row_bytes,
                           d->host_row(miss.begin), bytes);
          ++stats_.spill.transfers.copies_issued;
          TransferPlanner::account(
              stats_.spill.transfers, node_.topology(),
              sim::Endpoint::host(),
              sim::Endpoint::dev(devices_[static_cast<std::size_t>(slot)]),
              false, bytes);
          stats_.spill.bytes_refilled += bytes;
          monitor_.mark_copied(d, loc, miss);
          if (sanitizer_ != nullptr) {
            sanitizer_->on_copy(d, SegmentLocationMonitor::kHost, loc, miss);
          }
        }
      }
    }

    // 3b. Window size from the linear local-rows model of each streamed
    // pattern: probing 1- and 2-block-row windows gives the per-block-row
    // slope and the fixed overhead (halo rows), which
    // streaming_window_block_rows turns into the largest double-bufferable
    // window. The doubled fixed bytes ride in the persistent term — both
    // ping-pong buffer sets carry them.
    std::size_t slope_bytes = 0;
    std::size_t fixed_bytes = 0;
    bool any_windowed = false;
    {
      TaskPartition p1 = partition;
      p1.block_rows = {RowInterval{sblocks.begin, sblocks.begin + 1}};
      p1.work_row_ranges = {
          RowInterval{std::min(sblocks.begin * span, work_rows),
                      std::min((sblocks.begin + 1) * span, work_rows)}};
      TaskPartition p2 = partition;
      if (nblocks >= 2) {
        p2.block_rows = {RowInterval{sblocks.begin, sblocks.begin + 2}};
        p2.work_row_ranges = {
            RowInterval{std::min(sblocks.begin * span, work_rows),
                        std::min((sblocks.begin + 2) * span, work_rows)}};
      }
      for (std::size_t i = 0; i < specs.size(); ++i) {
        if (!sreqs[i].active || sreqs[i].whole) {
          continue;
        }
        any_windowed = true;
        const std::size_t row_bytes = specs[i].datum->row_bytes();
        const std::size_t l1 =
            compute_requirement(specs[i], p1, 0).local_rows;
        std::size_t slope = l1;
        std::size_t fixed = 0;
        if (nblocks >= 2) {
          const std::size_t l2 =
              compute_requirement(specs[i], p2, 0).local_rows;
          slope = l2 - l1;
          fixed = l1 > slope ? l1 - slope : 0;
        }
        slope_bytes += slope * row_bytes;
        fixed_bytes += fixed * row_bytes;
      }
    }
    std::size_t W = nblocks;
    if (any_windowed) {
      W = streaming_window_block_rows(slope_bytes,
                                      persistent_bytes + 2 * fixed_bytes,
                                      device_memory_budget_, nblocks);
      if (W == 0) {
        throw OutOfCoreError(
            "out-of-core: device memory budget of " +
            std::to_string(device_memory_budget_) +
            " bytes cannot hold a single streaming window of task '" +
            std::string(label) + "' on slot " + std::to_string(slot) +
            " (window-invariant residents need " +
            std::to_string(persistent_bytes + 2 * fixed_bytes) +
            " bytes, one window block-row streams " +
            std::to_string(slope_bytes) +
            " bytes, double-buffered) — the budget is smaller than one "
            "segment");
      }
    } else if (persistent_bytes > device_memory_budget_) {
      throw OutOfCoreError(
          "out-of-core: the whole-datum residents of task '" +
          std::string(label) + "' alone need " +
          std::to_string(persistent_bytes) +
          " bytes on slot " + std::to_string(slot) +
          ", exceeding the device memory budget of " +
          std::to_string(device_memory_budget_) +
          " bytes — the budget is smaller than one segment");
    }
    const std::size_t nwindows = (nblocks + W - 1) / W;
    stats_.spill.pass_count += nwindows;

    // Window requirements precomputed — windows are spans of the segment's
    // block rows, a pure function of the partition.
    std::vector<std::vector<SegmentReq>> wreqs(nwindows);
    std::vector<RowInterval> wblocks(nwindows);
    std::vector<std::size_t> max_rows(specs.size(), 0);
    for (std::size_t p = 0; p < nwindows; ++p) {
      const std::size_t b0 = sblocks.begin + p * W;
      const std::size_t b1 = std::min(b0 + W, sblocks.end);
      wblocks[p] = RowInterval{b0, b1};
      TaskPartition cp = partition;
      cp.block_rows = {RowInterval{b0, b1}};
      cp.work_row_ranges = {RowInterval{std::min(b0 * span, work_rows),
                                        std::min(b1 * span, work_rows)}};
      for (std::size_t i = 0; i < specs.size(); ++i) {
        wreqs[p].push_back(compute_requirement(specs[i], cp, 0));
        if (!sreqs[i].whole && wreqs[p].back().active) {
          max_rows[i] = std::max(max_rows[i], wreqs[p].back().local_rows);
        }
      }
    }

    // In-place updates: an output spec whose datum this task also reads must
    // stream through the SAME window temporary as the input spec — the
    // in-core path aliases their device allocation, and routines
    // read-modify-write through the output parameter (W *= ... in NMF's
    // wupdate). The radius guard above makes the two window geometries
    // identical (radius 0, unit row scale).
    std::vector<std::size_t> alias(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      alias[i] = i;
    }
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (specs[i].is_input || sreqs[i].whole) {
        continue;
      }
      for (std::size_t j = 0; j < specs.size(); ++j) {
        if (!specs[j].is_input || sreqs[j].whole ||
            specs[j].datum->key() != specs[i].datum->key()) {
          continue;
        }
        alias[i] = j;
        max_rows[j] = std::max(max_rows[j], max_rows[i]);
        max_rows[i] = 0; // shares j's temporary
        break;
      }
    }
    for (std::size_t p = 0; p < nwindows; ++p) {
      for (std::size_t i = 0; i < specs.size(); ++i) {
        if (alias[i] != i && wreqs[p][i].active &&
            wreqs[p][i].origin != wreqs[p][alias[i]].origin) {
          throw OutOfCoreError(
              "out-of-core: task '" + std::string(label) +
              "' updates datum '" + specs[i].datum->name() +
              "' in place but its input and output window geometries "
              "disagree — it cannot be streamed; raise the device memory "
              "budget");
        }
      }
    }

    // Ping-pong temporaries: window p streams through set p % 2, so the
    // refill of window p can overlap the kernel of window p - 1 under
    // prefetch. Transient residency is deliberately NOT recorded in the
    // location monitor — the buffers die with the pass.
    std::vector<sim::Buffer*> wbufs[2] = {
        std::vector<sim::Buffer*>(specs.size(), nullptr),
        std::vector<sim::Buffer*>(specs.size(), nullptr)};
    for (int set = 0; set < 2; ++set) {
      if (set == 1 && nwindows < 2) {
        break;
      }
      for (std::size_t i = 0; i < specs.size(); ++i) {
        if (max_rows[i] == 0) {
          continue;
        }
        sim::Buffer* buf = node_.malloc_device(
            devices_[static_cast<std::size_t>(slot)],
            max_rows[i] * specs[i].datum->row_bytes());
        temps.push_back(buf);
        wbufs[set][i] = buf;
      }
    }
    if (nwindows < 2) {
      wbufs[1] = wbufs[0];
    }
    for (int set = 0; set < 2; ++set) {
      for (std::size_t i = 0; i < specs.size(); ++i) {
        if (alias[i] != i) {
          wbufs[set][i] = wbufs[set][alias[i]];
        }
      }
    }

    const sim::EventId ev0 =
        node_.create_events(static_cast<int>(3 * nwindows));
    const auto inputs_ready = [&](std::size_t p) {
      return ev0 + static_cast<sim::EventId>(p);
    };
    const auto kernel_done = [&](std::size_t p) {
      return ev0 + static_cast<sim::EventId>(nwindows + p);
    };
    const auto drain_done = [&](std::size_t p) {
      return ev0 + static_cast<sim::EventId>(2 * nwindows + p);
    };

    sim::LaunchStats dev_stats{};
    if (factory) {
      dev_stats = task_launch_stats(specs, partition, seg, hints, label);
    }

    for (std::size_t p = 0; p < nwindows; ++p) {
      const RowInterval wb = wblocks[p];
      const auto& wr = wreqs[p];
      const int set = static_cast<int>(p % 2);
      // Double-buffer gating. Prefetch on: window p's refill may start as
      // soon as its buffer set is free — kernel p-2 released the input
      // temps, drain p-2 released the output temps — so it overlaps window
      // p-1's kernel. Prefetch off: the naive evict-then-refill baseline
      // serializes on the PREVIOUS window's drain.
      if (spill_prefetch_) {
        if (p >= 2) {
          node_.wait_event_generation(cs, kernel_done(p - 2), 1);
          node_.wait_event_generation(cs, drain_done(p - 2), 1);
        }
      } else if (p >= 1) {
        node_.wait_event_generation(cs, drain_done(p - 1), 1);
      }

      // Refill: window inputs straight from the flushed host rows.
      for (std::size_t i = 0; i < specs.size(); ++i) {
        if (sreqs[i].whole || !wr[i].active) {
          continue;
        }
        sim::Buffer* buf = wbufs[set][i];
        const Datum* d = specs[i].datum;
        const std::size_t row_bytes = d->row_bytes();
        for (const CopyRegion& region : wr[i].input_regions) {
          if (region.zero_fill) {
            node_.memset_device(
                cs, buf, static_cast<std::size_t>(region.local_row) *
                             row_bytes,
                0, row_bytes);
            continue;
          }
          const std::size_t bytes = region.global.size() * row_bytes;
          node_.memcpy_h2d(cs, buf,
                           static_cast<std::size_t>(region.local_row) *
                               row_bytes,
                           d->host_row(region.global.begin), bytes);
          ++stats_.spill.transfers.copies_issued;
          TransferPlanner::account(
              stats_.spill.transfers, node_.topology(),
              sim::Endpoint::host(),
              sim::Endpoint::dev(devices_[static_cast<std::size_t>(slot)]),
              false, bytes);
          stats_.spill.bytes_refilled += bytes;
          if (sanitizer_ != nullptr) {
            sanitizer_->on_read(d, SegmentLocationMonitor::kHost,
                                region.global);
          }
        }
      }
      node_.record_event(inputs_ready(p), cs);

      // Kernel over the window's block rows. The event wait transitively
      // covers the persistent fills issued on the same copy stream.
      node_.wait_event_generation(ks, inputs_ready(p), 1);
      maps::GridContext gc;
      gc.grid_dim = maps::Dim3{static_cast<unsigned>(partition.blocks_x),
                               static_cast<unsigned>(partition.blocks_y), 1};
      gc.block_dim = partition.block_dim;
      gc.block_row_offset = static_cast<unsigned>(wb.begin);
      gc.block_rows = static_cast<unsigned>(wb.size());
      gc.device = seg;
      gc.device_count = slots_eff;
      gc.work_width = static_cast<unsigned>(partition.work_cols);
      gc.work_height = static_cast<unsigned>(partition.work_rows);
      gc.ilp_x = partition.ilp_x;
      gc.ilp_y = partition.ilp_y;

      std::vector<DeviceView> views;
      views.reserve(specs.size());
      for (std::size_t i = 0; i < specs.size(); ++i) {
        if (!wr[i].active) {
          views.emplace_back();
          continue;
        }
        const Datum* d = specs[i].datum;
        DeviceView view;
        if (sreqs[i].whole) {
          const auto* alloc = wallocs[i];
          view.base = alloc->buffer->data();
          view.pitch = alloc->row_bytes;
          view.origin = alloc->origin;
          view.rows = alloc->rows;
        } else {
          sim::Buffer* buf = wbufs[set][i];
          view.base = buf->data();
          view.pitch = d->row_bytes();
          view.origin = wr[i].origin;
          view.rows = wr[i].local_rows;
        }
        view.row_elems = d->row_elems();
        view.datum_rows = d->rows();
        view.core_begin = wr[i].core.begin;
        view.core_end = wr[i].core.end;
        views.push_back(view);
      }

      if (factory) {
        auto body = factory(slot, gc, views);
        const double frac =
            static_cast<double>(wb.size()) / static_cast<double>(nblocks);
        node_.launch(ks, scale_launch_stats(dev_stats, frac),
                     std::move(body));
      } else {
        RoutineArgs args;
        args.node = &node_;
        args.device_idx = slot;
        args.sim_device = devices_[static_cast<std::size_t>(slot)];
        args.stream = ks;
        args.context = context;
        for (std::size_t i = 0; i < specs.size(); ++i) {
          if (!wr[i].active) {
            args.parameters.emplace_back();
            args.container_segments.emplace_back();
            continue;
          }
          RoutineParam param;
          if (sreqs[i].whole) {
            param.buffer = wallocs[i]->buffer;
            param.byte_offset = wallocs[i]->row_offset(
                static_cast<long>(wr[i].core.begin));
          } else {
            param.buffer = wbufs[set][i];
            param.byte_offset =
                static_cast<std::size_t>(
                    static_cast<long>(wr[i].core.begin) - wr[i].origin) *
                specs[i].datum->row_bytes();
          }
          param.view = views[i];
          args.parameters.push_back(param);
          Segment sg;
          sg.global_row_begin = wr[i].core.begin;
          sg.global_row_end = wr[i].core.end;
          sg.m_dimensions = specs[i].datum->dims();
          sg.m_dimensions[0] = wr[i].core.size();
          args.container_segments.push_back(std::move(sg));
        }
        args.constants = consts;
        if (!routine(args)) {
          throw std::runtime_error("unmodified routine reported failure");
        }
      }
      node_.record_event(kernel_done(p), ks);

      // Drain: each plain output's core rows go straight to the host — the
      // host is the streamed output's resting place, which is exactly what
      // makes the next task's uploads classify as refills.
      node_.wait_event_generation(ds, kernel_done(p), 1);
      for (std::size_t i = 0; i < specs.size(); ++i) {
        if (specs[i].is_input || sreqs[i].whole || !wr[i].active ||
            wr[i].core.empty()) {
          continue;
        }
        const Datum* d = specs[i].datum;
        const std::size_t row_bytes = d->row_bytes();
        const std::size_t bytes = wr[i].core.size() * row_bytes;
        node_.memcpy_d2h(
            ds, d->host_row(wr[i].core.begin), wbufs[set][i],
            static_cast<std::size_t>(static_cast<long>(wr[i].core.begin) -
                                     wr[i].origin) *
                row_bytes,
            bytes);
        ++stats_.spill.transfers.copies_issued;
        TransferPlanner::account(
            stats_.spill.transfers, node_.topology(),
            sim::Endpoint::dev(devices_[static_cast<std::size_t>(slot)]),
            sim::Endpoint::host(), false, bytes);
        stats_.spill.bytes_spilled += bytes;
        monitor_.mark_written(d, SegmentLocationMonitor::kHost, wr[i].core);
        if (sanitizer_ != nullptr) {
          sanitizer_->on_write(d, SegmentLocationMonitor::kHost, wr[i].core);
        }
        ++host_content_stamp_[d->key()];
      }
      node_.record_event(drain_done(p), ds);
    }
  }

  // 4. Pending aggregations: streamed Sum partials resolve through the
  // ordinary Gather / ReduceScatter machinery. The producing pass cannot be
  // re-executed per segment after a device loss (no cached plan shape), so
  // the aggregation log carries a null factory — a subsequent writer loss
  // fails loudly instead of silently dropping the partial.
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const PatternSpec& s = specs[i];
    if (s.is_input || s.agg == AggregationKind::None) {
      continue;
    }
    SegmentLocationMonitor::PendingAggregation agg;
    agg.kind = s.agg;
    agg.op = s.agg_op;
    for (int seg = 0; seg < slots_eff; ++seg) {
      if (reqs[static_cast<std::size_t>(seg)][i].active) {
        agg.writer_slots.push_back(live_[static_cast<std::size_t>(seg)]);
      }
    }
    monitor_.set_pending_aggregation(s.datum, std::move(agg));
    if (sanitizer_ != nullptr) {
      sanitizer_->on_pending_aggregation(s.datum);
    }
    if (fault_tolerance_) {
      AggLog log;
      log.datum = s.datum;
      log.live = live_;
      for (const PatternSpec& in : specs) {
        if (!in.is_input) {
          continue;
        }
        auto it = host_content_stamp_.find(in.datum->key());
        log.input_stamps.emplace_back(
            in.datum->key(),
            it == host_content_stamp_.end() ? 0 : it->second);
      }
      agg_log_[s.datum->key()] = std::move(log);
    }
  }

  node_.synchronize();
  for (sim::Buffer* buf : temps) {
    node_.free_device(buf);
  }
  // A streamed task leaves nothing for repair_structured: its plain outputs
  // are already host-resident and its partials are covered by the
  // aggregation log above.
  last_task_.valid = false;
  (void)quiesced;
  return handle;
}

// --- Fault tolerance & device-loss recovery (DESIGN.md §5.11) ----------------

void Scheduler::set_fault_tolerance_enabled(bool on) {
  if (on == fault_tolerance_) {
    return;
  }
  if (tasks_scheduled() != 0) {
    throw std::logic_error(
        "Scheduler: toggle fault tolerance before scheduling tasks (the host "
        "mirrors must cover every output from the first task on)");
  }
  fault_tolerance_ = on;
}

void Scheduler::kill_device(int slot) {
  if (slot < 0 || slot >= slots()) {
    throw std::invalid_argument("kill_device: slot " + std::to_string(slot) +
                                " out of range");
  }
  if (!fault_tolerance_) {
    throw std::logic_error(
        "kill_device: fault tolerance is disabled — without host mirrors a "
        "device loss is unrecoverable (set_fault_tolerance_enabled)");
  }
  if (dead_[static_cast<std::size_t>(slot)]) {
    throw std::logic_error("kill_device: slot " + std::to_string(slot) +
                           " is already dead");
  }
  // Outside a dispatch every completed task is mirrored, so only pending
  // aggregation partials can be lost — the PreGather stage repairs exactly
  // those.
  recover_device(slot, KillStage::PreGather);
}

void Scheduler::kill_node(int cluster_node) {
  const sim::Topology& topo = node_.topology();
  if (cluster_node < 0 || cluster_node >= topo.cluster_nodes()) {
    throw std::invalid_argument("kill_node: node " +
                                std::to_string(cluster_node) +
                                " out of range");
  }
  std::vector<int> victims;
  for (int slot = 0; slot < slots(); ++slot) {
    if (!dead_[static_cast<std::size_t>(slot)] &&
        topo.cluster_node_of(devices_[static_cast<std::size_t>(slot)]) ==
            cluster_node) {
      victims.push_back(slot);
    }
  }
  if (victims.empty()) {
    throw std::logic_error("kill_node: node " + std::to_string(cluster_node) +
                           " has no live devices");
  }
  // Sequential losses through the single-device path: each recovery leaves
  // the scheduler consistent, so the next victim's recovery sees exactly the
  // state a real cascading loss would. kill_device itself throws if the last
  // live device would go.
  for (const int slot : victims) {
    kill_device(slot);
  }
}

void Scheduler::enqueue_host_mirrors(const TaskPlan& plan, int skip_slot) {
  const PlanShape& sh = *plan.shape;
  for (int s : live_) {
    if (s == skip_slot) {
      continue;
    }
    const DevicePlan& dp = sh.devices[static_cast<std::size_t>(s)];
    if (!dp.active) {
      continue;
    }
    const int sloc = SegmentLocationMonitor::loc(s);
    for (const PatternPost& post : dp.post) {
      // Private (duplicated) partials are not valid global rows — they are
      // covered by the aggregation log, not the mirrors.
      if (!post.active || post.is_input || post.private_copy ||
          post.core.empty()) {
        continue;
      }
      const Datum* d = post.datum;
      if (!d->bound()) {
        throw std::runtime_error("fault tolerance: datum '" + d->name() +
                                 "' needs a bound host buffer to mirror to");
      }
      const auto* alloc = analyzer_.find(d, s);
      if (alloc == nullptr) {
        continue;
      }
      const sim::EventId ev = node_.create_event();
      std::vector<sim::EventId> waits;
      avail_[{d->key(), sloc}].collect(post.core, waits);
      access_[{d->key(), sloc}].add_reader(post.core_local, ev);
      auto& host_access = access_[{d->key(), SegmentLocationMonitor::kHost}];
      host_access.collect(post.core, waits);
      host_access.write(post.core, ev);
      avail_[{d->key(), SegmentLocationMonitor::kHost}].update(post.core, ev);
      monitor_.mark_copied(d, SegmentLocationMonitor::kHost, post.core);
      if (sanitizer_ != nullptr) {
        sanitizer_->on_copy(d, sloc, SegmentLocationMonitor::kHost,
                            post.core);
      }
      ++host_content_stamp_[d->key()];
      const std::size_t bytes = post.core.size() * alloc->row_bytes;
      ++stats_.transfers.copies_issued;
      TransferPlanner::account(
          stats_.transfers, node_.topology(),
          sim::Endpoint::dev(devices_[static_cast<std::size_t>(s)]),
          sim::Endpoint::host(), false, bytes);
      sim::Buffer* buffer = alloc->buffer;
      const std::size_t src_off =
          alloc->row_offset(static_cast<long>(post.core.begin));
      std::byte* dst = d->host_row(post.core.begin);
      const sim::StreamId stream = copy_streams2_[static_cast<std::size_t>(s)];
      const double issue_s = node_.host_now_s();
      invokers_[static_cast<std::size_t>(s)]->submit(
          [this, stream, waits, dst, buffer, src_off, bytes, ev, issue_s] {
            sim::Node::ScopedIssueFloor floor(node_, issue_s);
            for (sim::EventId w : waits) {
              node_.wait_event_generation(stream, w, 1);
            }
            node_.memcpy_d2h(stream, dst, buffer, src_off, bytes);
            node_.record_event(ev, stream);
          });
    }
  }
}

void Scheduler::recover_device(int victim, KillStage stage) {
  if (dead_[static_cast<std::size_t>(victim)]) {
    return;
  }
  // Drain-completes loss model: the kill takes effect at the next sync
  // point, so everything already enqueued — including this dispatch's jobs
  // and the survivors' mirrors — finishes first.
  for (auto& inv : invokers_) {
    inv->flush();
  }
  node_.synchronize();
  const double t0_ms = node_.now_ms();

  dead_[static_cast<std::size_t>(victim)] = true;
  live_.clear();
  for (int s = 0; s < slots(); ++s) {
    if (!dead_[static_cast<std::size_t>(s)]) {
      live_.push_back(s);
    }
  }
  if (live_.empty()) {
    throw std::runtime_error("device-loss recovery: all devices lost");
  }
  invokers_[static_cast<std::size_t>(victim)]->abandon();

  // Invalidate everything that references the dead device: its holdings in
  // the location monitor and sanitizer shadow map, its ordering maps (reset
  // in place — plans hold stable pointers into these maps), its allocations,
  // the reduce-scatter staging pools, and the whole plan cache (every cached
  // shape was partitioned over the old live set).
  const int vloc = SegmentLocationMonitor::loc(victim);
  // Out-of-core residency pays off here: every segment the victim spilled
  // under the memory budget was written back to the host before its buffer
  // was freed, so those datums survive the loss with no repair at all —
  // count them before the drop below erases the records (DESIGN.md §5.16).
  stats_.recovery.segments_restored_from_host +=
      static_cast<std::uint64_t>(monitor_.spilled_datum_count(vloc));
  monitor_.drop_location(vloc);
  if (sanitizer_ != nullptr) {
    sanitizer_->on_device_lost(vloc);
  }
  stats_.cache_evictions += cache_.size();
  cache_.clear();
  lru_.clear();
  for (auto& [key, map] : avail_) {
    if (key.second == vloc) {
      map = IntervalEventMap{};
    }
  }
  for (auto& [key, map] : access_) {
    if (key.second == vloc) {
      map = AccessIntervalMap{};
    }
  }
  analyzer_.drop_slot(victim);
  for (auto& [key, buf] : reduce_staging_) {
    node_.free_device(buf);
  }
  reduce_staging_.clear();
  for (auto& [key, buf] : combine_staging_) {
    node_.free_device(buf);
  }
  combine_staging_.clear();
  ++stats_.recovery.devices_lost;

  // Repairs run synchronously on the main thread, directly on the node's
  // streams: recovery ends with a synchronize, so no event wiring against
  // later tasks is needed.
  std::vector<sim::Buffer*> temps;
  if (stage != KillStage::PreGather && last_task_.valid) {
    repair_structured(victim, stage, temps);
  }
  repair_aggregations(victim, temps);
  node_.synchronize();
  for (sim::Buffer* b : temps) {
    node_.free_device(b);
  }
  stats_.recovery.recovery_sim_us += (node_.now_ms() - t0_ms) * 1000.0;
  last_task_.valid = false;
}

void Scheduler::repair_structured(int victim, KillStage stage,
                                  std::vector<sim::Buffer*>& temps) {
  (void)stage; // both mid-task stages lose the victim's outputs entirely
  const PlanShape& sh = *last_task_.shape;
  int victim_seg = -1;
  for (std::size_t i = 0; i < last_task_.live.size(); ++i) {
    if (last_task_.live[i] == victim) {
      victim_seg = static_cast<int>(i);
      break;
    }
  }
  if (victim_seg < 0) {
    return; // the victim held no segment of the last task
  }
  const DevicePlan& vdp = sh.devices[static_cast<std::size_t>(victim)];
  if (!vdp.active) {
    return;
  }
  bool any_agg = false, any_plain = false;
  for (const PatternSpec& s : sh.specs) {
    if (s.is_input) {
      continue;
    }
    (s.agg == AggregationKind::None ? any_plain : any_agg) = true;
  }
  if (any_agg && any_plain) {
    throw std::runtime_error(
        "device-loss recovery: the interrupted task mixes aggregated and "
        "plain outputs — unrecoverable");
  }
  if (any_agg) {
    return; // nothing mirrored was lost; repair_aggregations covers it
  }
  // Out-of-core interplay (DESIGN.md §5.16): when the host already covers
  // every output row of the victim's segment, the mirrors ARE the result and
  // nothing needs re-execution — spilled segments are restored from the host
  // for free. The current mid-task kill sites leave the victim's freshly
  // written rows host-stale (its mirror is suppressed), so this triggers
  // only when something else made them host-resident — e.g. an eviction
  // write-back; it also spares unmodified routines the throw below.
  bool host_covers = true;
  for (const PatternSpec& s : sh.specs) {
    if (s.is_input) {
      continue;
    }
    const SegmentReq req = compute_requirement(s, sh.partition, victim_seg);
    if (!req.active || req.core.empty()) {
      continue;
    }
    if (!monitor_.up_to_date(s.datum, SegmentLocationMonitor::kHost)
             .covers(req.core)) {
      host_covers = false;
      break;
    }
  }
  if (host_covers) {
    ++stats_.recovery.segments_restored_from_host;
    return;
  }
  if (!last_task_.factory) {
    throw std::runtime_error(
        "device-loss recovery: an unmodified routine was mid-task — routines "
        "cannot be re-executed per segment");
  }

  // Which datums the task writes in place (input == output): their host
  // rows still hold pre-task values at the victim's core — exactly what the
  // lost kernel read, provided it only read its own core (radius 0).
  std::vector<const void*> inplace;
  for (const PatternSpec& s : sh.specs) {
    if (!s.is_input) {
      inplace.push_back(s.datum->key());
    }
  }

  const RowInterval vblocks =
      sh.partition.block_rows[static_cast<std::size_t>(victim_seg)];
  const std::size_t nblocks = vblocks.size();
  if (nblocks == 0) {
    return;
  }
  const std::size_t nchunks = std::min(live_.size(), nblocks);
  const std::size_t span = sh.partition.rows_per_block_row();
  const std::size_t work_rows = sh.partition.work_rows;

  for (std::size_t c = 0; c < nchunks; ++c) {
    const std::size_t b0 = vblocks.begin + c * nblocks / nchunks;
    const std::size_t b1 = vblocks.begin + (c + 1) * nblocks / nchunks;
    const int s = live_[c % live_.size()];
    const sim::StreamId stream = compute_streams_[static_cast<std::size_t>(s)];

    // Re-derive the chunk's requirements as a single-segment partition so
    // the segmenters emit exactly the rows (core + halos) the chunk needs.
    TaskPartition cp = sh.partition;
    cp.block_rows = {RowInterval{b0, b1}};
    cp.work_row_ranges = {RowInterval{std::min(b0 * span, work_rows),
                                      std::min(b1 * span, work_rows)}};

    std::vector<DeviceView> views;
    std::vector<SegmentReq> reqs;
    std::vector<sim::Buffer*> chunk_bufs; ///< parallel to sh.specs
    views.reserve(sh.specs.size());
    reqs.reserve(sh.specs.size());
    chunk_bufs.reserve(sh.specs.size());
    for (const PatternSpec& spec : sh.specs) {
      SegmentReq req = compute_requirement(spec, cp, 0);
      reqs.push_back(req);
      if (!req.active) {
        views.emplace_back();
        chunk_bufs.push_back(nullptr);
        continue;
      }
      const Datum* d = spec.datum;
      const std::size_t row_bytes = d->row_bytes();
      sim::Buffer* buf = node_.malloc_device(
          devices_[static_cast<std::size_t>(s)], req.local_rows * row_bytes);
      temps.push_back(buf);
      chunk_bufs.push_back(buf);

      DeviceView view;
      view.base = buf->data();
      view.pitch = row_bytes;
      view.origin = req.origin;
      view.rows = req.local_rows;
      view.row_elems = d->row_elems();
      view.datum_rows = d->rows();
      view.core_begin = req.core.begin;
      view.core_end = req.core.end;
      views.push_back(view);

      for (const CopyRegion& region : req.input_regions) {
        if (region.zero_fill) {
          if (req.whole) {
            node_.memset_device(stream, buf, 0, 0, buf->size());
          } else {
            node_.memset_device(
                stream, buf,
                static_cast<std::size_t>(region.local_row) * row_bytes, 0,
                row_bytes);
          }
          continue;
        }
        const bool in_place =
            spec.is_input &&
            std::find(inplace.begin(), inplace.end(), d->key()) !=
                inplace.end();
        if (in_place) {
          // Host rows at the victim's core are PRE-task values — the right
          // input only when the lost kernel read nothing but its own core.
          if (!(region.global.begin >= req.core.begin &&
                region.global.end <= req.core.end)) {
            throw std::runtime_error(
                "device-loss recovery: in-place task reads beyond its own "
                "segment (radius > 0) — unrecoverable");
          }
        } else if (!monitor_
                        .up_to_date(d, SegmentLocationMonitor::kHost)
                        .covers(region.global)) {
          throw std::runtime_error(
              "device-loss recovery: host mirror of datum '" + d->name() +
              "' does not cover the lost segment's inputs");
        }
        node_.memcpy_h2d(stream, buf,
                         static_cast<std::size_t>(region.local_row) *
                             row_bytes,
                         d->host_row(region.global.begin),
                         region.global.size() * row_bytes);
        ++stats_.recovery.copies_rerouted;
      }
    }

    // The grid narrows to the chunk's block rows; device/device_count stay
    // the victim's, so the kernel's index sweep is bit-identical to the lost
    // launch's.
    maps::GridContext gc = vdp.grid;
    gc.block_row_offset = static_cast<unsigned>(b0);
    gc.block_rows = static_cast<unsigned>(b1 - b0);
    auto body = last_task_.factory(s, gc, views);
    const double frac =
        static_cast<double>(b1 - b0) / static_cast<double>(nblocks);
    node_.launch(stream, scale_launch_stats(vdp.stats, frac),
                 std::move(body));

    // Results land on the host (the recovery target): core rows of every
    // output, d2h'd from the temp buffer.
    for (std::size_t i = 0; i < sh.specs.size(); ++i) {
      const PatternSpec& spec = sh.specs[i];
      const SegmentReq& req = reqs[i];
      if (spec.is_input || !req.active || req.core.empty()) {
        continue;
      }
      const Datum* d = spec.datum;
      const std::size_t row_bytes = d->row_bytes();
      sim::Buffer* buf = chunk_bufs[i];
      node_.memcpy_d2h(
          stream, d->host_row(req.core.begin), buf,
          static_cast<std::size_t>(static_cast<long>(req.core.begin) -
                                   req.origin) *
              row_bytes,
          req.core.size() * row_bytes);
      monitor_.mark_written(d, SegmentLocationMonitor::kHost, req.core);
      if (sanitizer_ != nullptr) {
        sanitizer_->on_write(d, SegmentLocationMonitor::kHost, req.core);
      }
      ++host_content_stamp_[d->key()];
    }
    ++stats_.recovery.segments_reexecuted;
  }
}

void Scheduler::repair_aggregations(int victim,
                                    std::vector<sim::Buffer*>& temps) {
  for (auto& [key, log] : agg_log_) {
    const Datum* d = log.datum;
    const auto* pending = monitor_.pending_aggregation(d);
    if (pending == nullptr) {
      continue; // already resolved (gathered / scattered); nothing pending
    }
    if (std::find(pending->writer_slots.begin(), pending->writer_slots.end(),
                  victim) == pending->writer_slots.end()) {
      continue; // the victim held no partial of this datum
    }
    if (pending->kind != AggregationKind::Sum || !pending->op) {
      throw std::runtime_error(
          "device-loss recovery: only Sum-aggregated pending outputs are "
          "recoverable (datum '" +
          d->name() + "')");
    }
    if (!log.factory) {
      throw std::runtime_error(
          "device-loss recovery: the pending partial of datum '" + d->name() +
          "' was produced by an unmodified routine or a streamed "
          "out-of-core pass — unrecoverable; Gather before killing");
    }
    for (const auto& [ikey, stamp] : log.input_stamps) {
      auto it = host_content_stamp_.find(ikey);
      const std::uint64_t cur =
          it == host_content_stamp_.end() ? 0 : it->second;
      if (cur != stamp) {
        throw std::runtime_error(
            "device-loss recovery: host inputs of the pending aggregation on "
            "datum '" +
            d->name() + "' were overwritten since dispatch — unrecoverable");
      }
    }
    const PlanShape& sh = *log.shape;
    int victim_seg = -1;
    for (std::size_t i = 0; i < log.live.size(); ++i) {
      if (log.live[i] == victim) {
        victim_seg = static_cast<int>(i);
        break;
      }
    }
    if (victim_seg < 0) {
      continue;
    }
    const DevicePlan& vdp = sh.devices[static_cast<std::size_t>(victim)];
    if (!vdp.active) {
      continue;
    }
    // Survivor: a live writer still holding its own partial of this datum.
    int s = -1;
    for (int cand : live_) {
      if (std::find(pending->writer_slots.begin(),
                    pending->writer_slots.end(),
                    cand) != pending->writer_slots.end() &&
          analyzer_.find(d, cand) != nullptr) {
        s = cand;
        break;
      }
    }
    if (s < 0) {
      throw std::runtime_error(
          "device-loss recovery: no surviving holder of the pending partial "
          "of datum '" +
          d->name() + "'");
    }
    const sim::StreamId stream = compute_streams_[static_cast<std::size_t>(s)];

    // Re-execute the victim's whole segment of the logged task into temps.
    std::vector<DeviceView> views;
    views.reserve(sh.specs.size());
    sim::Buffer* out_temp = nullptr;
    const PatternSpec* out_spec = nullptr;
    for (const PatternSpec& spec : sh.specs) {
      SegmentReq req = compute_requirement(spec, sh.partition, victim_seg);
      if (!req.active) {
        views.emplace_back();
        continue;
      }
      const std::size_t row_bytes = spec.datum->row_bytes();
      sim::Buffer* buf = node_.malloc_device(
          devices_[static_cast<std::size_t>(s)], req.local_rows * row_bytes);
      temps.push_back(buf);
      if (!spec.is_input && spec.datum == d) {
        if (!req.whole) {
          throw std::runtime_error(
              "device-loss recovery: pending partial of datum '" + d->name() +
              "' is not a whole-datum duplicate — unrecoverable");
        }
        out_temp = buf;
        out_spec = &spec;
      }
      DeviceView view;
      view.base = buf->data();
      view.pitch = row_bytes;
      view.origin = req.origin;
      view.rows = req.local_rows;
      view.row_elems = spec.datum->row_elems();
      view.datum_rows = spec.datum->rows();
      view.core_begin = req.core.begin;
      view.core_end = req.core.end;
      views.push_back(view);

      for (const CopyRegion& region : req.input_regions) {
        if (region.zero_fill) {
          if (req.whole) {
            node_.memset_device(stream, buf, 0, 0, buf->size());
          } else {
            node_.memset_device(
                stream, buf,
                static_cast<std::size_t>(region.local_row) * row_bytes, 0,
                row_bytes);
          }
          continue;
        }
        if (!monitor_.up_to_date(spec.datum, SegmentLocationMonitor::kHost)
                 .covers(region.global)) {
          throw std::runtime_error(
              "device-loss recovery: host mirror of datum '" +
              spec.datum->name() +
              "' does not cover the lost partial's inputs");
        }
        node_.memcpy_h2d(stream, buf,
                         static_cast<std::size_t>(region.local_row) *
                             row_bytes,
                         spec.datum->host_row(region.global.begin),
                         region.global.size() * row_bytes);
        ++stats_.recovery.copies_rerouted;
      }
    }
    if (out_temp == nullptr || out_spec == nullptr) {
      continue; // the logged task no longer writes this datum
    }

    auto body = log.factory(s, vdp.grid, views);
    node_.launch(stream, vdp.stats, std::move(body));

    // Fold the re-executed partial into the survivor's: int Sum is
    // commutative and associative, so the later Gather/ReduceScatter sums
    // the same multiset of partials and stays bit-identical.
    const auto* s_alloc = analyzer_.find(d, s);
    sim::Buffer* s_buf = s_alloc->buffer;
    const std::size_t s_off = s_alloc->row_offset(0);
    const std::size_t elems = d->rows() * d->row_elems();
    auto op = pending->op;
    sim::LaunchStats st;
    st.label = "fault_recovery_combine";
    st.blocks = std::max<std::uint64_t>(1, elems / 256);
    st.threads_per_block = 256;
    st.flops = elems;
    st.global_bytes_read = elems * 8;
    st.global_bytes_written = elems * 4;
    node_.launch(stream, st, [s_buf, s_off, out_temp, elems, op] {
      if (!s_buf->has_backing() || !out_temp->has_backing()) {
        return;
      }
      op(s_buf->data() + s_off, out_temp->data(), elems);
    });
    monitor_.remove_pending_writer(d, victim);
    ++stats_.recovery.segments_reexecuted;
  }
}

void Scheduler::apply_copy_faults(TaskPlan& plan) {
  if (!copy_fault_hook_) {
    return;
  }
  const PlanShape& sh = *plan.shape;
  for (std::size_t slot = 0; slot < sh.devices.size(); ++slot) {
    const DevicePlan& dp = sh.devices[slot];
    if (!dp.active) {
      continue;
    }
    DeviceWiring& dw = plan.wiring[slot];
    for (std::size_t i = 0; i < dp.copies.size(); ++i) {
      const PlannedCopy& c = dp.copies[i];
      CopyFaultInfo info;
      info.datum = c.datum;
      info.src_location = c.src_location;
      info.dst_location = c.dst_location;
      info.rows = c.rows;
      info.zero_fill = c.zero_fill;
      info.aligned = c.aligned;
      info.task = plan.handle;
      if (copy_fault_hook_(info)) {
        dw.copies[i].dropped = true;
      }
    }
  }
}

void Scheduler::sanitize_dispatch(const TaskPlan& plan) {
  const PlanShape& sh = *plan.shape;
  const char* label = "task";
  for (const DevicePlan& dp : sh.devices) {
    if (dp.active && !dp.stats.label.empty()) {
      label = dp.stats.label.c_str();
      break;
    }
  }
  sanitizer_->begin_context(plan.handle, label);

  // 1. Copies, in plan order (slot-major, pattern order within a slot) —
  // the same program order Algorithm 2 planned them in, so intra-task copy
  // chains (a later slot sourcing from an earlier slot's fresh replica)
  // validate correctly. While walking, record which global rows each
  // pattern's Wrap/Clamp halo slots were refilled with this dispatch.
  std::vector<std::vector<IntervalSet>> halo_cover(sh.devices.size());
  for (std::size_t slot = 0; slot < sh.devices.size(); ++slot) {
    const DevicePlan& dp = sh.devices[slot];
    if (!dp.active) {
      continue;
    }
    halo_cover[slot].resize(sh.specs.size());
    const DeviceWiring& dw = plan.wiring[slot];
    for (std::size_t i = 0; i < dp.copies.size(); ++i) {
      const PlannedCopy& c = dp.copies[i];
      if (c.zero_fill || dw.copies[i].dropped) {
        continue;
      }
      if (c.aligned) {
        sanitizer_->on_copy(c.datum, c.src_location, c.dst_location, c.rows);
      } else {
        sanitizer_->on_halo_source(c.datum, c.src_location, c.rows);
        halo_cover[slot][static_cast<std::size_t>(c.pattern_index)].add(
            c.rows);
      }
    }
  }

  // 1b. Split devices: every inferred copy landing inside a strip's read
  // span must be listed in that strip's copy gates — otherwise the strip
  // could launch before its halo/chunk arrives. Purely structural, so it
  // catches a broken build and a broken replay identically.
  for (std::size_t slot = 0; slot < sh.devices.size(); ++slot) {
    const DevicePlan& dp = sh.devices[slot];
    if (!dp.active || dp.sub.empty()) {
      continue;
    }
    const int loc = SegmentLocationMonitor::loc(static_cast<int>(slot));
    for (const SubKernel& sub : dp.sub) {
      for (std::size_t ci = 0; ci < dp.copies.size(); ++ci) {
        const PlannedCopy& c = dp.copies[ci];
        if (c.zero_fill) {
          continue; // ordered through the access map, not the copy gates
        }
        const StripSpan& sp =
            sub.spans[static_cast<std::size_t>(c.pattern_index)];
        if (intersect(c.dst_local, sp.read_local).empty()) {
          continue;
        }
        if (!std::binary_search(sub.copy_waits.begin(), sub.copy_waits.end(),
                                static_cast<std::uint32_t>(ci))) {
          sanitizer_->report_ungated_strip(c.datum, loc, sp.read_local,
                                           c.dst_local);
        }
      }
    }
  }

  // 2. "Before each kernel executes": every input rectangle must be at the
  // latest version — aligned rectangles against the shadow map, halo-slot
  // rectangles against this dispatch's boundary refills.
  for (std::size_t slot = 0; slot < sh.devices.size(); ++slot) {
    const DevicePlan& dp = sh.devices[slot];
    if (!dp.active) {
      continue;
    }
    const int loc = SegmentLocationMonitor::loc(static_cast<int>(slot));
    for (std::size_t i = 0; i < dp.post.size(); ++i) {
      const PatternPost& post = dp.post[i];
      if (!post.active || !post.is_input) {
        continue;
      }
      for (const RowInterval& iv : post.reads) {
        sanitizer_->on_read(post.datum, loc, iv);
      }
      for (const RowInterval& iv : post.halo_reads) {
        if (!halo_cover[slot][i].covers(iv)) {
          sanitizer_->report_missing_halo(post.datum, loc, iv);
        }
      }
    }
  }

  // 3. Kernel outputs: aligned outputs advance their core rows to a fresh
  // version; private (duplicated) partials are handled by the aggregation
  // state below.
  for (std::size_t slot = 0; slot < sh.devices.size(); ++slot) {
    const DevicePlan& dp = sh.devices[slot];
    if (!dp.active) {
      continue;
    }
    const int loc = SegmentLocationMonitor::loc(static_cast<int>(slot));
    for (const PatternPost& post : dp.post) {
      if (post.active && !post.is_input && !post.private_copy) {
        sanitizer_->on_write(post.datum, loc, post.core);
      }
    }
  }

  // 4. Reductive/unstructured outputs leave partial copies everywhere.
  for (const PatternSpec& s : sh.specs) {
    if (!s.is_input && s.agg != AggregationKind::None) {
      sanitizer_->on_pending_aggregation(s.datum);
    }
  }
}

void Scheduler::record_task_logs(const std::shared_ptr<TaskPlan>& plan,
                                 const BodyFactory& factory) {
  last_task_.valid = static_cast<bool>(factory);
  last_task_.shape = plan->shape;
  last_task_.factory = factory;
  last_task_.handle = plan->handle;
  last_task_.live = live_;
  for (const PatternSpec& s : plan->shape->specs) {
    if (s.is_input || s.agg == AggregationKind::None) {
      continue;
    }
    AggLog log;
    log.datum = s.datum;
    log.shape = plan->shape;
    log.factory = factory;
    log.live = live_;
    for (const PatternSpec& in : plan->shape->specs) {
      if (!in.is_input) {
        continue;
      }
      auto it = host_content_stamp_.find(in.datum->key());
      log.input_stamps.emplace_back(
          in.datum->key(), it == host_content_stamp_.end() ? 0 : it->second);
    }
    agg_log_[s.datum->key()] = std::move(log);
  }
}

TaskHandle Scheduler::dispatch_kernel(std::shared_ptr<TaskPlan> plan,
                                      const BodyFactory& factory) {
  apply_copy_faults(*plan);
  if (sanitizer_ != nullptr) {
    sanitize_dispatch(*plan);
  }

  // Fault tolerance: log the dispatch for recovery, then let the injector
  // choose a victim. At most one device dies per dispatch; the kill takes
  // effect at the next sync point (drain-completes loss model), so the jobs
  // are still submitted — truncated after the copies for a CopiesIssued
  // loss — and recovery runs once they drain.
  int victim = -1;
  KillStage stage = KillStage::CopiesIssued;
  if (fault_tolerance_) {
    record_task_logs(plan, factory);
    if (injector_) {
      const char* label = "task";
      for (const DevicePlan& dp : plan->shape->devices) {
        if (dp.active && !dp.stats.label.empty()) {
          label = dp.stats.label.c_str();
          break;
        }
      }
      for (int s : live_) {
        if (!plan->shape->devices[static_cast<std::size_t>(s)].active) {
          continue;
        }
        if (injector_(
                FaultPoint{s, KillStage::CopiesIssued, plan->handle, label})) {
          victim = s;
          stage = KillStage::CopiesIssued;
          break;
        }
        if (injector_(
                FaultPoint{s, KillStage::KernelIssued, plan->handle, label})) {
          victim = s;
          stage = KillStage::KernelIssued;
          break;
        }
      }
    }
  }

  node_.advance_host_us(task_overhead_us_ +
                        per_device_overhead_us_ * plan->shape->active_slots);
  const double issue_s = node_.host_now_s();
  for (int slot = 0; slot < slots(); ++slot) {
    const DevicePlan& dp = plan->shape->devices[static_cast<std::size_t>(slot)];
    if (!dp.active) {
      continue;
    }
    // One body per sub-kernel strip (the factory narrows the grid to the
    // strip's block rows), or a single body for an unsplit device.
    std::vector<std::function<void()>> bodies;
    if (dp.sub.empty()) {
      bodies.push_back(factory(slot, dp.grid, dp.views));
    } else {
      bodies.reserve(dp.sub.size());
      for (const SubKernel& sub : dp.sub) {
        bodies.push_back(factory(slot, sub.grid, dp.views));
      }
    }
    const bool copies_only =
        slot == victim && stage == KillStage::CopiesIssued;
    invokers_[static_cast<std::size_t>(slot)]->submit(
        [this, plan, slot, issue_s, copies_only,
         bodies = std::move(bodies)]() mutable {
          sim::Node::ScopedIssueFloor floor(node_, issue_s);
          enqueue_device_commands(plan, slot, std::move(bodies), nullptr,
                                  nullptr, nullptr, copies_only);
        });
  }
  if (fault_tolerance_) {
    // The victim's outputs die with it: for CopiesIssued they were never
    // computed, for KernelIssued they were computed but the loss precedes
    // the mirror — either way recovery re-derives them from the mirrors.
    enqueue_host_mirrors(*plan, victim);
  }
  if (victim >= 0) {
    recover_device(victim, stage);
  }
  return plan->handle;
}

TaskHandle Scheduler::dispatch_routine(std::shared_ptr<TaskPlan> plan,
                                       UnmodifiedRoutine routine,
                                       void* context,
                                       std::vector<std::vector<std::byte>>
                                           consts) {
  apply_copy_faults(*plan);
  if (sanitizer_ != nullptr) {
    sanitize_dispatch(*plan);
  }
  if (fault_tolerance_) {
    // Routines have no re-executable body factory: the logs record the
    // shape (for the unrecoverable-loss diagnostics) with a null factory.
    record_task_logs(plan, BodyFactory{});
  }
  node_.advance_host_us(task_overhead_us_ +
                        per_device_overhead_us_ * plan->shape->active_slots);
  auto shared_consts = std::make_shared<std::vector<std::vector<std::byte>>>(
      std::move(consts));
  const double issue_s = node_.host_now_s();
  for (int slot = 0; slot < slots(); ++slot) {
    if (!plan->shape->devices[static_cast<std::size_t>(slot)].active) {
      continue;
    }
    invokers_[static_cast<std::size_t>(slot)]->submit(
        [this, plan, slot, issue_s, routine, context, shared_consts] {
          sim::Node::ScopedIssueFloor floor(node_, issue_s);
          enqueue_device_commands(plan, slot, {}, routine, context,
                                  shared_consts);
        });
  }
  if (fault_tolerance_) {
    enqueue_host_mirrors(*plan, -1);
  }
  return plan->handle;
}

void Scheduler::GatherAsync(Datum& datum) {
  if (!datum.bound()) {
    throw std::runtime_error("Gather: datum '" + datum.name() +
                             "' is not bound to a host buffer");
  }
  if (!monitor_.known(&datum)) {
    monitor_.register_datum(&datum);
    return; // never touched by a task: host copy is authoritative
  }
  node_.advance_host_us(task_overhead_us_);
  if (sanitizer_ != nullptr) {
    sanitizer_->begin_context(0, "Gather");
  }

  // PreGather device loss: consulted before any gather planning, so the
  // plan below only ever sees the post-recovery location state (the
  // victim's pending partials have already been folded into a survivor).
  if (fault_tolerance_ && injector_) {
    const std::vector<int> alive = live_;
    for (int s : alive) {
      if (injector_(FaultPoint{s, KillStage::PreGather, 0, "gather"})) {
        recover_device(s, KillStage::PreGather);
        break;
      }
    }
  }

  const auto* pending = monitor_.pending_aggregation(&datum);
  std::vector<sim::EventId> ready_events;

  if (pending != nullptr) {
    // §3.2: duplicated outputs are gathered from every device and
    // post-processed on the host.
    struct Staged {
      int slot;
      std::shared_ptr<std::vector<std::byte>> bytes;
      std::size_t rows;
    };
    auto staged = std::make_shared<std::vector<Staged>>();
    for (int slot : pending->writer_slots) {
      const auto* alloc = analyzer_.find(&datum, slot);
      if (alloc == nullptr) {
        continue;
      }
      auto host_bytes =
          std::make_shared<std::vector<std::byte>>(alloc->buffer->size());
      staged->push_back(Staged{slot, host_bytes, alloc->rows});
      // Gathers bypass the plan cache, so their traffic is attributed to the
      // run totals directly.
      ++stats_.transfers.copies_issued;
      TransferPlanner::account(
          stats_.transfers, node_.topology(),
          sim::Endpoint::dev(devices_[static_cast<std::size_t>(slot)]),
          sim::Endpoint::host(), false, alloc->buffer->size());
      const sim::EventId ev = node_.create_event();
      ready_events.push_back(ev);
      const sim::StreamId stream =
          copy_streams_[static_cast<std::size_t>(slot)];
      std::vector<sim::EventId> producers;
      avail_[{datum.key(), SegmentLocationMonitor::loc(slot)}].collect(
          RowInterval{0, datum.rows()}, producers);
      access_[{datum.key(), SegmentLocationMonitor::loc(slot)}].add_reader(
          RowInterval{0, alloc->rows}, ev);
      sim::Buffer* buffer = alloc->buffer;
      const double issue_s = node_.host_now_s();
      invokers_[static_cast<std::size_t>(slot)]->submit(
          [this, stream, producers, buffer, host_bytes, ev, issue_s] {
            sim::Node::ScopedIssueFloor floor(node_, issue_s);
            for (sim::EventId w : producers) {
              node_.wait_event_generation(stream, w, 1);
            }
            node_.memcpy_d2h(stream, host_bytes->data(), buffer, 0,
                             buffer->size());
            node_.record_event(ev, stream);
          });
    }

    const sim::EventId host_ready = node_.create_event();
    // Host-side aggregation cost scales with the staged volume (~25 GB/s:
    // a multi-threaded combine over resident pages).
    double staged_bytes = 0;
    for (const auto& st : *staged) {
      staged_bytes += static_cast<double>(st.bytes->size());
    }
    const double agg_cost_us = 10.0 + staged_bytes * 0.04e-3;
    const AggregationKind kind = pending->kind;
    auto op = pending->op;
    auto counts_it = append_counts_.find(datum.key());
    auto counts = counts_it == append_counts_.end()
                      ? nullptr
                      : counts_it->second;
    auto& gathered = gathered_counts_[datum.key()];
    if (!gathered) {
      gathered = std::make_shared<std::size_t>(0);
    }
    auto gathered_out = gathered;
    Datum* dptr = &datum;
    const std::size_t lead = static_cast<std::size_t>(live_.front());
    const sim::StreamId agg_stream = copy_streams_[lead];
    const double agg_issue_s = node_.host_now_s();
    invokers_[lead]->submit([this, agg_stream, ready_events, staged, kind, op,
                          counts, gathered_out, dptr, host_ready, agg_cost_us,
                          agg_issue_s] {
      sim::Node::ScopedIssueFloor floor(node_, agg_issue_s);
      for (sim::EventId ev : ready_events) {
        node_.wait_event_generation(agg_stream, ev, 1);
      }
      node_.host_func(
          agg_stream,
          [staged, kind, op, counts, gathered_out, dptr] {
            const std::size_t row_bytes = dptr->row_bytes();
            const std::size_t elems = dptr->rows() * dptr->row_elems();
            const std::size_t esize = dptr->elem_size();
            std::byte* host = static_cast<std::byte*>(dptr->host_raw());
            switch (kind) {
            case AggregationKind::Sum: {
              bool first = true;
              for (const auto& st : *staged) {
                if (first) {
                  std::memcpy(host, st.bytes->data(), elems * esize);
                  first = false;
                } else {
                  op(host, st.bytes->data(), elems);
                }
              }
              break;
            }
            case AggregationKind::Append: {
              std::size_t total = 0;
              for (const auto& st : *staged) {
                const std::size_t n =
                    counts ? (*counts)[static_cast<std::size_t>(st.slot)] : 0;
                std::memcpy(host + total * row_bytes, st.bytes->data(),
                            n * row_bytes);
                total += n;
              }
              *gathered_out = total;
              break;
            }
            case AggregationKind::MaskedMerge: {
              for (const auto& st : *staged) {
                const std::byte* payload = st.bytes->data();
                const std::byte* mask = payload + elems * esize;
                for (std::size_t i = 0; i < elems; ++i) {
                  if (mask[i] != std::byte{0}) {
                    std::memcpy(host + i * esize, payload + i * esize, esize);
                  }
                }
              }
              break;
            }
            case AggregationKind::None:
              break;
            }
          },
          agg_cost_us);
      node_.record_event(host_ready, agg_stream);
    });
    avail_[{datum.key(), SegmentLocationMonitor::kHost}].update(
        RowInterval{0, datum.rows()}, host_ready);
    monitor_.clear_pending_aggregation(&datum);
    monitor_.mark_copied(&datum, SegmentLocationMonitor::kHost,
                         RowInterval{0, datum.rows()});
    ++host_content_stamp_[datum.key()];
    if (sanitizer_ != nullptr) {
      sanitizer_->on_aggregation_resolved_host(&datum);
    }
    return;
  }

  // Structured outputs: Algorithm 2 with the host as the target.
  const auto ops = monitor_.plan_copies(&datum, SegmentLocationMonitor::kHost,
                                        RowInterval{0, datum.rows()});
  if (ops.empty()) {
    return;
  }
  ++host_content_stamp_[datum.key()];
  for (const auto& op : ops) {
    if (op.src_location == SegmentLocationMonitor::kHost) {
      continue;
    }
    const int slot = op.src_location - 1;
    const auto* alloc = analyzer_.find(&datum, slot);
    if (alloc == nullptr) {
      throw std::logic_error("gather: missing allocation");
    }
    const sim::EventId ev = node_.create_event();
    ready_events.push_back(ev);
    const sim::StreamId stream = copy_streams_[static_cast<std::size_t>(slot)];
    std::vector<sim::EventId> producers;
    avail_[{datum.key(), op.src_location}].collect(op.rows, producers);
    // The d2h both reads the device rows and overwrites the host rows.
    const RowInterval src_local{
        static_cast<std::size_t>(static_cast<long>(op.rows.begin) -
                                 alloc->origin),
        static_cast<std::size_t>(static_cast<long>(op.rows.end) -
                                 alloc->origin)};
    access_[{datum.key(), op.src_location}].add_reader(src_local, ev);
    auto& host_access = access_[{datum.key(), SegmentLocationMonitor::kHost}];
    host_access.collect(op.rows, producers);
    host_access.write(op.rows, ev);
    sim::Buffer* buffer = alloc->buffer;
    const std::size_t src_off =
        alloc->row_offset(static_cast<long>(op.rows.begin));
    std::byte* dst = datum.host_row(op.rows.begin);
    const std::size_t bytes = op.rows.size() * alloc->row_bytes;
    ++stats_.transfers.copies_issued;
    TransferPlanner::account(
        stats_.transfers, node_.topology(),
        sim::Endpoint::dev(devices_[static_cast<std::size_t>(slot)]),
        sim::Endpoint::host(), false, bytes);
    const double issue_s = node_.host_now_s();
    invokers_[static_cast<std::size_t>(slot)]->submit(
        [this, stream, producers, buffer, src_off, dst, bytes, ev, issue_s] {
          sim::Node::ScopedIssueFloor floor(node_, issue_s);
          for (sim::EventId w : producers) {
            node_.wait_event_generation(stream, w, 1);
          }
          node_.memcpy_d2h(stream, dst, buffer, src_off, bytes);
          node_.record_event(ev, stream);
        });
    monitor_.mark_copied(&datum, SegmentLocationMonitor::kHost, op.rows);
    if (sanitizer_ != nullptr) {
      sanitizer_->on_copy(&datum, op.src_location,
                          SegmentLocationMonitor::kHost, op.rows);
    }
  }
  // Single event covering all gather pieces, so later reads of the host
  // buffer have one dependency.
  const sim::EventId host_ready = node_.create_event();
  const std::size_t lead = static_cast<std::size_t>(live_.front());
  const sim::StreamId agg_stream = copy_streams_[lead];
  const double issue_s = node_.host_now_s();
  invokers_[lead]->submit([this, agg_stream, ready_events, host_ready,
                           issue_s] {
    sim::Node::ScopedIssueFloor floor(node_, issue_s);
    for (sim::EventId ev : ready_events) {
      node_.wait_event_generation(agg_stream, ev, 1);
    }
    node_.record_event(host_ready, agg_stream);
  });
  avail_[{datum.key(), SegmentLocationMonitor::kHost}].update(
      RowInterval{0, datum.rows()}, host_ready);
}

void Scheduler::MarkHostModified(Datum& datum) {
  if (!datum.bound()) {
    throw std::runtime_error("MarkHostModified: datum '" + datum.name() +
                             "' is not bound");
  }
  if (!monitor_.known(&datum)) {
    monitor_.register_datum(&datum);
    return;
  }
  monitor_.mark_written(&datum, SegmentLocationMonitor::kHost,
                        RowInterval{0, datum.rows()});
  ++host_content_stamp_[datum.key()];
  if (sanitizer_ != nullptr) {
    sanitizer_->on_host_write(&datum);
  }
  // Host-code writes happen at the current host clock; nothing to chain on.
  avail_[{datum.key(), SegmentLocationMonitor::kHost}] = IntervalEventMap{};
  access_[{datum.key(), SegmentLocationMonitor::kHost}] = AccessIntervalMap{};
}

void Scheduler::ReduceScatter(Datum& datum, Work work) {
  const auto* pending = monitor_.pending_aggregation(&datum);
  if (pending == nullptr) {
    throw std::runtime_error("ReduceScatter: datum '" + datum.name() +
                             "' has no pending aggregation");
  }
  if (pending->kind != AggregationKind::Sum || !pending->op) {
    throw std::runtime_error(
        "ReduceScatter: only Sum-aggregated outputs are supported");
  }
  node_.advance_host_us(task_overhead_us_);
  if (sanitizer_ != nullptr) {
    sanitizer_->begin_context(0, "ReduceScatter");
    sanitizer_->on_aggregation_scattered(&datum);
  }

  const TaskPartition partition =
      make_partition(work.rows == 0 ? datum.rows() : work.rows, 1,
                     maps::Dim3{1, 1, 1}, 1, 1, live_count());
  const std::size_t row_bytes = datum.row_bytes();
  auto op = pending->op;
  const auto writers = pending->writer_slots;

  for (int seg = 0; seg < live_count(); ++seg) {
    const int t = live_[static_cast<std::size_t>(seg)];
    const RowInterval rows =
        partition.work_row_ranges[static_cast<std::size_t>(seg)];
    if (rows.empty()) {
      continue;
    }
    const auto* dst_alloc = analyzer_.find(&datum, t);
    if (dst_alloc == nullptr) {
      continue;
    }
    const int t_loc = SegmentLocationMonitor::loc(t);
    const std::size_t seg_bytes = rows.size() * row_bytes;

    // Hierarchical pre-combine (the reduce dual of the transfer planner's
    // fan-out trees): partials are grouped into *combine domains* — PCIe
    // pairs on the target's own cluster node, whole nodes elsewhere — and
    // each domain sums locally before its single combined segment travels
    // to the target. A pair of partials behind the inter-socket link then
    // crosses it once instead of once per holder, and on a cluster each
    // remote node's partials cross the network once instead of once per
    // writer.
    const sim::Topology& topo = node_.topology();
    const int t_dev = devices_[static_cast<std::size_t>(t)];
    const int t_bus = topo.bus_of(t_dev);
    const int t_node = topo.cluster_node_of(t_dev);
    std::vector<int> sources;
    std::vector<std::vector<int>> combine_groups;
    {
      // Domain ids: [0, bus_count) = buses on the target's node,
      // [bus_count, bus_count + cluster_nodes) = whole remote nodes.
      const std::size_t n_domains =
          static_cast<std::size_t>(topo.bus_count()) +
          static_cast<std::size_t>(topo.cluster_nodes());
      std::vector<std::vector<int>> by_domain(n_domains);
      for (int s : writers) {
        if (s == t || analyzer_.find(&datum, s) == nullptr) {
          continue;
        }
        const int dev = devices_[static_cast<std::size_t>(s)];
        const int s_node = topo.cluster_node_of(dev);
        const std::size_t dom =
            s_node == t_node
                ? static_cast<std::size_t>(topo.bus_of(dev))
                : static_cast<std::size_t>(topo.bus_count()) +
                      static_cast<std::size_t>(s_node);
        by_domain[dom].push_back(s);
      }
      for (std::size_t dom = 0; dom < n_domains; ++dom) {
        auto& members = by_domain[dom];
        // The target's own bus needs no pre-combine: its partials already
        // sit one cheap hop away.
        const bool target_bus = dom == static_cast<std::size_t>(t_bus);
        if (!planner_active() || target_bus || members.size() < 2) {
          sources.insert(sources.end(), members.begin(), members.end());
          continue;
        }
        const int combiner = members.front();
        std::vector<int> group{combiner};
        for (int m : members) {
          if (m == combiner) {
            continue;
          }
          if (topo.peer_enabled(devices_[static_cast<std::size_t>(combiner)],
                                devices_[static_cast<std::size_t>(m)])) {
            group.push_back(m);
          } else {
            sources.push_back(m);
          }
        }
        sources.push_back(combiner);
        if (group.size() >= 2) {
          combine_groups.push_back(std::move(group));
        }
      }
    }

    for (const auto& group : combine_groups) {
      const int c = group.front();
      const auto* c_alloc = analyzer_.find(&datum, c);
      const int c_loc = SegmentLocationMonitor::loc(c);
      auto& scratch = combine_staging_[{datum.key(), t * slots() + c}];
      const std::size_t need = seg_bytes * (group.size() - 1);
      if (scratch == nullptr || scratch->size() < need) {
        scratch =
            node_.malloc_device(devices_[static_cast<std::size_t>(c)], need);
      }
      struct Pull {
        sim::Buffer* src = nullptr;
        std::size_t src_off = 0;
        std::vector<sim::EventId> waits;
        sim::EventId done = 0;
      };
      std::vector<Pull> pulls;
      for (std::size_t i = 1; i < group.size(); ++i) {
        const int m = group[i];
        const auto* m_alloc = analyzer_.find(&datum, m);
        Pull pull;
        pull.src = m_alloc->buffer;
        pull.src_off = m_alloc->row_offset(static_cast<long>(rows.begin));
        avail_[{datum.key(), SegmentLocationMonitor::loc(m)}].collect(
            rows, pull.waits);
        pull.done = node_.create_event();
        access_[{datum.key(), SegmentLocationMonitor::loc(m)}].add_reader(
            RowInterval{
                static_cast<std::size_t>(static_cast<long>(rows.begin) -
                                         m_alloc->origin),
                static_cast<std::size_t>(static_cast<long>(rows.end) -
                                         m_alloc->origin)},
            pull.done);
        ++stats_.transfers.copies_issued;
        TransferPlanner::account(
            stats_.transfers, topo,
            sim::Endpoint::dev(devices_[static_cast<std::size_t>(m)]),
            sim::Endpoint::dev(devices_[static_cast<std::size_t>(c)]), false,
            seg_bytes);
        pulls.push_back(pull);
      }
      const sim::EventId comb_done = node_.create_event();
      std::vector<sim::EventId> comb_waits;
      avail_[{datum.key(), c_loc}].collect(rows, comb_waits);
      const RowInterval c_local{
          static_cast<std::size_t>(static_cast<long>(rows.begin) -
                                   c_alloc->origin),
          static_cast<std::size_t>(static_cast<long>(rows.end) -
                                   c_alloc->origin)};
      access_[{datum.key(), c_loc}].collect(c_local, comb_waits);
      sim::Buffer* c_buffer = c_alloc->buffer;
      const std::size_t c_off =
          c_alloc->row_offset(static_cast<long>(rows.begin));
      const std::size_t c_elems = rows.size() * datum.row_elems();
      const std::size_t n_pulls = pulls.size();
      const double c_issue_s = node_.host_now_s();
      const sim::StreamId c_copy = copy_streams_[static_cast<std::size_t>(c)];
      const sim::StreamId c_copy2 =
          copy_streams2_[static_cast<std::size_t>(c)];
      const sim::StreamId c_compute =
          reduce_streams_[static_cast<std::size_t>(c)];
      sim::Buffer* scratch_buf = scratch;
      invokers_[static_cast<std::size_t>(c)]->submit(
          [this, pulls, scratch_buf, seg_bytes, c_copy, c_copy2, c_compute,
           comb_waits, comb_done, c_buffer, c_off, c_elems, n_pulls, op,
           c_issue_s] {
            sim::Node::ScopedIssueFloor floor(node_, c_issue_s);
            std::size_t off = 0;
            int rr = 0;
            for (const Pull& pull : pulls) {
              const sim::StreamId cs = (rr++ % 2 == 0) ? c_copy : c_copy2;
              for (sim::EventId w : pull.waits) {
                node_.wait_event_generation(cs, w, 1);
              }
              node_.memcpy_p2p(cs, scratch_buf, off, pull.src, pull.src_off,
                               seg_bytes);
              node_.record_event(pull.done, cs);
              off += seg_bytes;
            }
            for (const Pull& pull : pulls) {
              node_.wait_event_generation(c_compute, pull.done, 1);
            }
            for (sim::EventId w : comb_waits) {
              node_.wait_event_generation(c_compute, w, 1);
            }
            sim::LaunchStats st;
            st.label = "reduce_scatter_combine";
            st.blocks = std::max<std::uint64_t>(1, c_elems / 256);
            st.threads_per_block = 256;
            st.flops = c_elems * n_pulls;
            st.global_bytes_read = seg_bytes * n_pulls + c_elems * 4;
            st.global_bytes_written = c_elems * 4;
            node_.launch(c_compute, st, [scratch_buf, seg_bytes, c_buffer,
                                         c_off, c_elems, n_pulls, op] {
              if (scratch_buf == nullptr || !scratch_buf->has_backing()) {
                return;
              }
              for (std::size_t k = 0; k < n_pulls; ++k) {
                op(c_buffer->data() + c_off,
                   scratch_buf->data() + k * seg_bytes, c_elems);
              }
            });
            node_.record_event(comb_done, c_compute);
          });
      avail_[{datum.key(), c_loc}].update(rows, comb_done);
      access_[{datum.key(), c_loc}].write(c_local, comb_done);
    }

    // Staging area on the target for the peers' partial segments.
    struct Piece {
      sim::Buffer* src = nullptr;
      std::size_t src_off = 0;
      std::vector<sim::EventId> waits;
      sim::EventId done = 0;
      /// Piece-wise copy granularity (0 = one copy). Set for network
      /// crossings so a remote node's combined segment pipelines its
      /// D2H / NIC / H2D hops chunk by chunk, exactly like routed input
      /// transfers. Byte totals are unchanged: the chunks partition the
      /// same segment over the same link.
      std::size_t chunk_bytes = 0;
    };
    std::vector<Piece> pieces;
    sim::Buffer* staging = nullptr;
    for (int s : sources) {
      const auto* src_alloc = analyzer_.find(&datum, s);
      if (staging == nullptr) {
        // Reuse the staging area across iterations.
        auto& cached = reduce_staging_[{datum.key(), t}];
        const std::size_t need = seg_bytes * (writers.size() - 1);
        if (cached == nullptr || cached->size() < need) {
          cached = node_.malloc_device(devices_[static_cast<std::size_t>(t)],
                                       need);
        }
        staging = cached;
      }
      Piece piece;
      piece.src = src_alloc->buffer;
      piece.src_off = src_alloc->row_offset(static_cast<long>(rows.begin));
      avail_[{datum.key(), SegmentLocationMonitor::loc(s)}].collect(
          rows, piece.waits);
      piece.done = node_.create_event();
      access_[{datum.key(), SegmentLocationMonitor::loc(s)}].add_reader(
          RowInterval{static_cast<std::size_t>(static_cast<long>(rows.begin) -
                                               src_alloc->origin),
                      static_cast<std::size_t>(static_cast<long>(rows.end) -
                                               src_alloc->origin)},
          piece.done);
      ++stats_.transfers.copies_issued;
      TransferPlanner::account(
          stats_.transfers, node_.topology(),
          sim::Endpoint::dev(devices_[static_cast<std::size_t>(s)]),
          sim::Endpoint::dev(devices_[static_cast<std::size_t>(t)]), false,
          seg_bytes);
      if (planner_active() && copy_chunk_bytes_ > 0 &&
          topo.network_pipelining &&
          !topo.peer_enabled(devices_[static_cast<std::size_t>(s)], t_dev) &&
          seg_bytes > copy_chunk_bytes_) {
        piece.chunk_bytes = copy_chunk_bytes_;
        const std::uint32_t depth = static_cast<std::uint32_t>(
            (seg_bytes + copy_chunk_bytes_ - 1) / copy_chunk_bytes_);
        stats_.transfers.max_pipeline_depth =
            std::max(stats_.transfers.max_pipeline_depth, depth);
        stats_.transfers.bytes_chunked_network += seg_bytes;
        stats_.transfers.copies_chunked += depth - 1;
      }
      pieces.push_back(piece);
    }

    // Local sum kernel: dst rows += every staged partial segment.
    const sim::EventId sum_done = node_.create_event();
    std::vector<sim::EventId> sum_waits;
    avail_[{datum.key(), t_loc}].collect(rows, sum_waits);
    const RowInterval dst_local{
        static_cast<std::size_t>(static_cast<long>(rows.begin) -
                                 dst_alloc->origin),
        static_cast<std::size_t>(static_cast<long>(rows.end) -
                                 dst_alloc->origin)};
    access_[{datum.key(), t_loc}].collect(dst_local, sum_waits);

    sim::Buffer* dst_buffer = dst_alloc->buffer;
    const std::size_t dst_off =
        dst_alloc->row_offset(static_cast<long>(rows.begin));
    const std::size_t elems = rows.size() * datum.row_elems();
    const std::size_t n_pieces = pieces.size();
    const double issue_s = node_.host_now_s();
    const sim::StreamId copy_stream =
        copy_streams_[static_cast<std::size_t>(t)];
    const sim::StreamId copy_stream2 =
        copy_streams2_[static_cast<std::size_t>(t)];
    const sim::StreamId compute_stream =
        reduce_streams_[static_cast<std::size_t>(t)];
    invokers_[static_cast<std::size_t>(t)]->submit([this, pieces, staging,
                                                    seg_bytes, copy_stream,
                                                    copy_stream2,
                                                    compute_stream, sum_waits,
                                                    sum_done, dst_buffer,
                                                    dst_off, elems, n_pieces,
                                                    op, issue_s] {
      sim::Node::ScopedIssueFloor floor(node_, issue_s);
      std::size_t off = 0;
      int rr = 0;
      for (const Piece& piece : pieces) {
        const sim::StreamId cs = (rr++ % 2 == 0) ? copy_stream : copy_stream2;
        for (sim::EventId w : piece.waits) {
          node_.wait_event_generation(cs, w, 1);
        }
        if (piece.chunk_bytes > 0) {
          // Network crossing: issue the segment as chunk pieces on the same
          // stream (ordering preserved) so successive chunks overlap their
          // D2H / NIC / H2D legs under the simulator's pipelined occupancy
          // model. piece.done still records after the last chunk.
          std::size_t done_b = 0;
          while (done_b < seg_bytes) {
            const std::size_t n =
                std::min(piece.chunk_bytes, seg_bytes - done_b);
            node_.memcpy_p2p(cs, staging, off + done_b, piece.src,
                             piece.src_off + done_b, n);
            done_b += n;
          }
        } else {
          node_.memcpy_p2p(cs, staging, off, piece.src, piece.src_off,
                           seg_bytes);
        }
        node_.record_event(piece.done, cs);
        off += seg_bytes;
      }
      for (const Piece& piece : pieces) {
        node_.wait_event_generation(compute_stream, piece.done, 1);
      }
      for (sim::EventId w : sum_waits) {
        node_.wait_event_generation(compute_stream, w, 1);
      }
      sim::LaunchStats st;
      st.label = "reduce_scatter_sum";
      st.blocks = std::max<std::uint64_t>(1, elems / 256);
      st.threads_per_block = 256;
      st.flops = elems * n_pieces;
      st.global_bytes_read = seg_bytes * n_pieces + elems * 4;
      st.global_bytes_written = elems * 4;
      node_.launch(compute_stream, st, [staging, seg_bytes, dst_buffer,
                                        dst_off, elems, n_pieces, op] {
        if (staging == nullptr || !staging->has_backing()) {
          return;
        }
        for (std::size_t k = 0; k < n_pieces; ++k) {
          op(dst_buffer->data() + dst_off, staging->data() + k * seg_bytes,
             elems);
        }
      });
      node_.record_event(sum_done, compute_stream);
    });

    avail_[{datum.key(), t_loc}].update(rows, sum_done);
    access_[{datum.key(), t_loc}].write(dst_local, sum_done);
    monitor_.mark_written(&datum, t_loc, rows);
    if (sanitizer_ != nullptr) {
      sanitizer_->on_write(&datum, t_loc, rows);
    }

    // Fault tolerance: the reduced segment is a brand-new value that exists
    // only on its target device; mirror it so the host invariant (fresh copy
    // of every non-pending datum) holds for the scattered result too.
    if (fault_tolerance_) {
      if (!datum.bound()) {
        throw std::runtime_error("fault tolerance: datum '" + datum.name() +
                                 "' needs a bound host buffer to mirror to");
      }
      const sim::EventId mirror_done = node_.create_event();
      std::vector<sim::EventId> mirror_waits{sum_done};
      access_[{datum.key(), t_loc}].add_reader(dst_local, mirror_done);
      auto& host_access =
          access_[{datum.key(), SegmentLocationMonitor::kHost}];
      host_access.collect(rows, mirror_waits);
      host_access.write(rows, mirror_done);
      avail_[{datum.key(), SegmentLocationMonitor::kHost}].update(rows,
                                                                  mirror_done);
      monitor_.mark_copied(&datum, SegmentLocationMonitor::kHost, rows);
      if (sanitizer_ != nullptr) {
        sanitizer_->on_copy(&datum, t_loc, SegmentLocationMonitor::kHost,
                            rows);
      }
      ++host_content_stamp_[datum.key()];
      ++stats_.transfers.copies_issued;
      TransferPlanner::account(
          stats_.transfers, node_.topology(),
          sim::Endpoint::dev(devices_[static_cast<std::size_t>(t)]),
          sim::Endpoint::host(), false, seg_bytes);
      std::byte* mirror_dst = datum.host_row(rows.begin);
      const sim::StreamId mirror_stream =
          copy_streams2_[static_cast<std::size_t>(t)];
      const double mirror_issue_s = node_.host_now_s();
      invokers_[static_cast<std::size_t>(t)]->submit(
          [this, mirror_stream, mirror_waits, mirror_dst, dst_buffer, dst_off,
           seg_bytes, mirror_done, mirror_issue_s] {
            sim::Node::ScopedIssueFloor floor(node_, mirror_issue_s);
            for (sim::EventId w : mirror_waits) {
              node_.wait_event_generation(mirror_stream, w, 1);
            }
            node_.memcpy_d2h(mirror_stream, mirror_dst, dst_buffer, dst_off,
                             seg_bytes);
            node_.record_event(mirror_done, mirror_stream);
          });
    }
  }
  monitor_.clear_pending_aggregation(&datum);
}

void Scheduler::Gather(Datum& datum) {
  GatherAsync(datum);
  WaitAll();
}

void Scheduler::Wait(TaskHandle handle) {
  (void)handle; // conservative: drain everything (see synchronize_stream)
  WaitAll();
}

void Scheduler::WaitAll() {
  for (auto& inv : invokers_) {
    inv->flush();
  }
  node_.synchronize();
}

std::size_t Scheduler::gathered_count(const Datum& datum) const {
  auto it = gathered_counts_.find(datum.key());
  return it == gathered_counts_.end() ? 0 : *it->second;
}

} // namespace maps::multi
