// Shared plumbing for the dual-facet pattern containers.
//
// Every MAPS-Multi container template plays two roles, exactly as in the
// paper's code samples (Fig 2): on the host it wraps a Datum and describes
// its access pattern (the `Win2D(A)` argument objects); on the device it is
// the index-free, thread-level interface the kernel body uses. The framework
// fills the device facet (bind) and advances the per-thread context
// (set_thread) while sweeping the virtual grid.
#pragma once

#include <cassert>
#include <cstddef>

#include "maps/common.hpp"
#include "multi/pattern_spec.hpp"

namespace maps::multi {

namespace detail {

class PatternBase {
public:
  /// Framework hook: installs this device's buffer geometry.
  void bind(const DeviceView& view) { view_ = view; }
  /// Framework hook: installs the current thread's context.
  void set_thread(const maps::ThreadContext* tc) { tc_ = tc; }

  const DeviceView& view() const { return view_; }
  const maps::ThreadContext& tc() const {
    assert(tc_ != nullptr);
    return *tc_;
  }
  Datum* datum() const { return datum_; }

protected:
  explicit PatternBase(Datum* datum = nullptr) : datum_(datum) {}
  Datum* datum_ = nullptr;
  DeviceView view_{};
  const maps::ThreadContext* tc_ = nullptr;
};

/// Enumerates the ILP elements assigned to the current thread in work space,
/// skipping coordinates outside the task's work dimensions (edge blocks).
/// The ILP extents come from the GridContext at run time: the planner
/// normalizes the output container's template parameters onto the grid
/// (e.g. folding ILP into the partition dimension for 1-D work).
class IlpCursor {
public:
  explicit IlpCursor(const maps::ThreadContext& tc)
      : x0_(tc.work_x0()), y0_(tc.work_y0()), w_(tc.grid->work_width),
        h_(tc.grid->work_height), ilp_x_(tc.grid->ilp_x),
        count_(tc.grid->ilp_x * tc.grid->ilp_y), i_(0) {
    skip_out_of_range();
  }

  unsigned work_x() const { return x0_ + i_ % ilp_x_; }
  unsigned work_y() const { return y0_ + i_ / ilp_x_; }
  bool done() const { return i_ >= count_; }

  void advance() {
    ++i_;
    skip_out_of_range();
  }

private:
  void skip_out_of_range() {
    while (i_ < count_ && (work_x() >= w_ || work_y() >= h_)) {
      ++i_;
    }
  }
  unsigned x0_ = 0, y0_ = 0, w_ = 0, h_ = 0;
  unsigned ilp_x_ = 1, count_ = 1, i_ = 1;
};

} // namespace detail

/// End-of-iteration sentinel shared by all container iterators.
struct IterEnd {};

} // namespace maps::multi
