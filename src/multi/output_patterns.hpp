// Output memory access pattern containers (§3.2 of the paper).
//
// The five output classes — Structured Injective, Unstructured Injective,
// Reductive Static, Reductive Dynamic and Irregular — classify all mappings
// from threads to outputs. The Segmentation/AggregationKind each spec()
// declares is what drives per-device allocation, exact-segment partitioning
// (Structured Injective conserves memory, §3.2) and host-side aggregation on
// Gather.
//
// Device-level aggregators (§4.5.2) are modeled in two places: functionally,
// writes land in the device's private buffer and are combined on gather;
// cost-wise, task_cost.cpp charges shared-memory atomics plus one coalesced
// global commit per block instead of per-thread global atomics.
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <type_traits>

#include "multi/pattern_base.hpp"

namespace maps::multi {

namespace detail {

/// Fills the Sum-aggregation hooks of a ReductiveStatic-style spec: the plain
/// element-wise combiner, the exactness flag, and — for floating-point
/// element types — the Neumaier-compensated merge step the parallel backend
/// uses so chunked float sums stay deterministic (pattern_spec.hpp).
template <typename T> inline void fill_sum_agg(PatternSpec& s) {
  s.agg_exact = std::is_integral_v<T>;
  s.agg_op = [](void* acc, const void* part, std::size_t elems) {
    T* a = static_cast<T*>(acc);
    const T* p = static_cast<const T*>(part);
    for (std::size_t i = 0; i < elems; ++i) {
      a[i] += p[i];
    }
  };
  if constexpr (std::is_floating_point_v<T>) {
    s.agg_op_comp = [](void* acc, const void* part, void* carry,
                       std::size_t elems) {
      T* a = static_cast<T*>(acc);
      const T* p = static_cast<const T*>(part);
      T* c = static_cast<T*>(carry);
      for (std::size_t i = 0; i < elems; ++i) {
        const T s0 = a[i];
        const T t = s0 + p[i];
        // Neumaier: the rounding error of s0 + p[i] is recoverable from
        // whichever operand is larger in magnitude; bank it in the carry.
        c[i] += std::abs(s0) >= std::abs(p[i]) ? (s0 - t) + p[i]
                                               : (p[i] - t) + s0;
        a[i] = t;
      }
    };
  }
}

} // namespace detail

// ---------------------------------------------------------------------------
// Structured Injective
// ---------------------------------------------------------------------------

/// Each thread writes a fixed number of distinct output elements whose
/// indices coincide with the work dimensions (e.g. matrix multiplication,
/// Game of Life). Paper type: StructuredInjective<T, DIMS, ILPX, ILPY>.
template <typename T, int Dims = 2, int ILPX = 1, int ILPY = 1>
class StructuredInjective : public detail::PatternBase {
public:
  StructuredInjective() = default;
  explicit StructuredInjective(Datum& d) : PatternBase(&d) {}

  PatternSpec spec() const {
    PatternSpec s;
    s.kind = PatternKind::StructuredInjective;
    s.is_input = false;
    s.datum = datum_;
    s.seg = Segmentation::PartitionAligned;
    s.agg = AggregationKind::None;
    s.ilp_x = ILPX;
    s.ilp_y = ILPY;
    return s;
  }

  struct SharedData {}; // API parity with the CUDA implementation
  void init() {}
  void init(SharedData&) {}

  class iterator {
  public:
    iterator(const StructuredInjective* c, const maps::ThreadContext& tc)
        : c_(c), cur_(tc) {}

    T& operator*() const {
      const DeviceView& v = c_->view();
      const long ly = static_cast<long>(cur_.work_y()) - v.origin;
      assert(ly >= 0 && static_cast<std::size_t>(ly) < v.rows);
      return *reinterpret_cast<T*>(v.base + static_cast<std::size_t>(ly) *
                                                v.pitch +
                                   cur_.work_x() * sizeof(T));
    }
    unsigned work_x() const { return cur_.work_x(); }
    unsigned work_y() const { return cur_.work_y(); }
    /// Linear index in the global output datum.
    std::size_t global_index() const {
      return static_cast<std::size_t>(cur_.work_y()) * c_->view().row_elems +
             cur_.work_x();
    }
    iterator& operator++() {
      cur_.advance();
      return *this;
    }
    bool operator!=(IterEnd) const { return !cur_.done(); }

  private:
    const StructuredInjective* c_;
    detail::IlpCursor cur_;
  };

  iterator begin() const { return iterator(this, tc()); }
  IterEnd end() const { return IterEnd{}; }

  /// Device-level aggregator commit (§4.5.2): writes are flushed to global
  /// memory per block. Functionally a no-op — the cost model charges it.
  void commit() {}
};

// ---------------------------------------------------------------------------
// Reductive (Static)
// ---------------------------------------------------------------------------

/// Many-to-one mapping with a predetermined number of outputs (histogram).
/// Each device holds a private full copy; Gather sum-aggregates. Paper type:
/// ReductiveStatic<T, BINS, ILP> (Fig 4).
template <typename T, int Bins, int ILP = 1>
class ReductiveStatic : public detail::PatternBase {
public:
  ReductiveStatic() = default;
  explicit ReductiveStatic(Datum& d) : PatternBase(&d) {
    if (d.rows() * d.row_elems() != static_cast<std::size_t>(Bins)) {
      throw std::invalid_argument(
          "ReductiveStatic: datum size does not match BINS");
    }
  }

  PatternSpec spec() const {
    PatternSpec s;
    s.kind = PatternKind::ReductiveStatic;
    s.is_input = false;
    s.datum = datum_;
    s.seg = Segmentation::DuplicateFull;
    s.agg = AggregationKind::Sum;
    s.ilp_x = ILP;
    detail::fill_sum_agg<T>(s);
    return s;
  }

  struct SharedData {};
  void init() {}
  void init(SharedData&) {}

  /// Handle for one work element; indexing selects the output bin, as in
  /// `hist_iter[bin] += 1` (Fig 4 line 16). Accumulation goes to the
  /// device-private copy — the simulated equivalent of the shared-memory
  /// aggregator path.
  class iterator {
  public:
    iterator(const ReductiveStatic* c, const maps::ThreadContext& tc)
        : c_(c), cur_(tc) {}
    T& operator[](std::size_t bin) const {
      assert(bin < static_cast<std::size_t>(Bins));
      return reinterpret_cast<T*>(c_->view().base)[bin];
    }
    unsigned work_x() const { return cur_.work_x(); }
    unsigned work_y() const { return cur_.work_y(); }
    iterator& operator++() {
      cur_.advance();
      return *this;
    }
    bool operator!=(IterEnd) const { return !cur_.done(); }

  private:
    const ReductiveStatic* c_;
    detail::IlpCursor cur_;
  };

  iterator begin() const { return iterator(this, tc()); }
  IterEnd end() const { return IterEnd{}; }
  void commit() {}
};

/// Runtime-sized Reductive (Static) for unmodified routines: every device
/// accumulates into a private, zero-initialized full copy of the datum;
/// Gather sums the partials. This is how the deep-learning application's
/// weight gradients behave under data parallelism (§6.1) — the per-device
/// partial derivatives of the same parameters are aggregated during the
/// network update phase.
template <typename T> class SumReduced : public detail::PatternBase {
public:
  SumReduced() = default;
  explicit SumReduced(Datum& d) : PatternBase(&d) {}

  PatternSpec spec() const {
    PatternSpec s;
    s.kind = PatternKind::ReductiveStatic;
    s.is_input = false;
    s.datum = datum_;
    s.seg = Segmentation::DuplicateFull;
    s.agg = AggregationKind::Sum;
    detail::fill_sum_agg<T>(s);
    return s;
  }

  struct SharedData {};
  void init() {}
  void init(SharedData&) {}
  void commit() {}
};

// ---------------------------------------------------------------------------
// Reductive (Dynamic)
// ---------------------------------------------------------------------------

/// Fewer outputs than threads, count determined at runtime (predicate-based
/// filtering, §3.2). Each device appends locally; Gather concatenates the
/// per-device results into the output datum in device order.
template <typename T, int ILP = 1>
class ReductiveDynamic : public detail::PatternBase {
public:
  ReductiveDynamic() = default;
  explicit ReductiveDynamic(Vector<T>& d) : PatternBase(&d) {}

  PatternSpec spec() const {
    PatternSpec s;
    s.kind = PatternKind::ReductiveDynamic;
    s.is_input = false;
    s.datum = datum_;
    s.seg = Segmentation::DynamicAppend;
    s.agg = AggregationKind::Append;
    s.ilp_x = ILP;
    return s;
  }

  struct SharedData {};
  void init() {}
  void init(SharedData&) {}

  /// Framework hook: installs the per-device append counter for this launch.
  void bind_append_counter(std::uint64_t* counter) { count_ = counter; }
  /// The currently bound counter (the chunked sweep reads the shared one
  /// through the prototype tuple when concatenating chunk partials).
  std::uint64_t* append_counter() const { return count_; }

  /// Appends one result to this device's output segment.
  void append(const T& value) const {
    const DeviceView& v = view();
    if (*count_ >= v.rows) {
      throw std::runtime_error("ReductiveDynamic: device segment overflow");
    }
    reinterpret_cast<T*>(v.base)[(*count_)++] = value;
  }

  class iterator {
  public:
    explicit iterator(const maps::ThreadContext& tc) : cur_(tc) {}
    unsigned work_x() const { return cur_.work_x(); }
    unsigned work_y() const { return cur_.work_y(); }
    iterator& operator++() {
      cur_.advance();
      return *this;
    }
    bool operator!=(IterEnd) const { return !cur_.done(); }

  private:
    detail::IlpCursor cur_;
  };
  iterator begin() const { return iterator(tc()); }
  IterEnd end() const { return IterEnd{}; }
  void commit() {}

private:
  std::uint64_t* count_ = nullptr;
};

// ---------------------------------------------------------------------------
// Unstructured Injective
// ---------------------------------------------------------------------------

/// Injective writes whose indices are uncorrelated with thread indices (FFT
/// output, §3.2): every device duplicates the datum and records which
/// elements it wrote; Gather merges the scattered results.
template <typename T, int ILP = 1>
class UnstructuredInjective : public detail::PatternBase {
public:
  UnstructuredInjective() = default;
  explicit UnstructuredInjective(Datum& d) : PatternBase(&d) {}

  PatternSpec spec() const {
    PatternSpec s;
    s.kind = PatternKind::UnstructuredInjective;
    s.is_input = false;
    s.datum = datum_;
    s.seg = Segmentation::DuplicateFull;
    s.agg = AggregationKind::MaskedMerge;
    s.ilp_x = ILP;
    return s;
  }

  struct SharedData {};
  void init() {}
  void init(SharedData&) {}

  /// Writes one element anywhere in the global datum.
  void write(std::size_t index, const T& value) const {
    const DeviceView& v = view();
    const std::size_t elems = v.datum_rows * v.row_elems;
    assert(index < elems);
    reinterpret_cast<T*>(v.base)[index] = value;
    // Per-device write mask, stored after the payload (DESIGN.md §3).
    v.base[elems * sizeof(T) + index] = std::byte{1};
  }

  class iterator {
  public:
    explicit iterator(const maps::ThreadContext& tc)
        : cur_(tc), work_width_(tc.grid->work_width) {}
    unsigned work_x() const { return cur_.work_x(); }
    unsigned work_y() const { return cur_.work_y(); }
    /// Linear index of the current work element in the task's work space.
    std::size_t global_work_index() const {
      return static_cast<std::size_t>(cur_.work_y()) * work_width_ +
             cur_.work_x();
    }
    iterator& operator++() {
      cur_.advance();
      return *this;
    }
    bool operator!=(IterEnd) const { return !cur_.done(); }

  private:
    detail::IlpCursor cur_;
    unsigned work_width_ = 0;
  };
  iterator begin() const { return iterator(tc()); }
  IterEnd end() const { return IterEnd{}; }
  void commit() {}
};

// ---------------------------------------------------------------------------
// Irregular output
// ---------------------------------------------------------------------------

/// Unknown number of outputs per thread (ray tracing, §3.2). Mechanically an
/// append pattern with full-capacity device segments.
template <typename T>
class IrregularOutput : public ReductiveDynamic<T, 1> {
public:
  IrregularOutput() = default;
  explicit IrregularOutput(Vector<T>& d) : ReductiveDynamic<T, 1>(d) {}

  PatternSpec spec() const {
    PatternSpec s = ReductiveDynamic<T, 1>::spec();
    s.kind = PatternKind::IrregularOutput;
    return s;
  }
};

} // namespace maps::multi
