// The MAPS-Multi Scheduler (§4.3, Algorithm 1): the main component of the
// host-level infrastructure.
//
// The scheduler mediates between the framework and the devices: it
// constructs Tasks from typed function calls, determines the grid
// segmentation strategy from the access patterns, uses the Segmenters /
// Memory Analyzer / Segment Location Monitor to infer allocations and
// inter-GPU transfers, and queues copy and execution commands to each device
// concurrently through per-device Invoker Threads — managing streams and
// events so memory stays consistent.
//
// Public API follows the paper's Table 2: AnalyzeCall, Invoke,
// InvokeUnmodified, Gather, GatherAsync, Wait, WaitAll.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <type_traits>
#include <vector>

#include "sim/node.hpp"

#include "multi/datum.hpp"
#include "multi/invoker.hpp"
#include "multi/kernel_exec.hpp"
#include "multi/location_monitor.hpp"
#include "multi/memory_analyzer.hpp"
#include "multi/pattern_spec.hpp"
#include "multi/routine.hpp"
#include "multi/segmenter.hpp"
#include "multi/task_cost.hpp"

namespace maps::multi {

using TaskHandle = std::uint64_t;

namespace detail {

template <typename A>
concept PatternArg = requires(const A& a) {
  { a.spec() } -> std::convertible_to<PatternSpec>;
};

template <typename A> struct is_constant : std::false_type {};
template <typename T> struct is_constant<Constant<T>> : std::true_type {};
template <typename A>
inline constexpr bool is_constant_v = is_constant<std::decay_t<A>>::value;

template <typename P>
concept HasAppendCounter = requires(P& p, std::uint64_t* c) {
  p.bind_append_counter(c);
};

} // namespace detail

class Scheduler {
public:
  /// Schedules on the given sim devices (all of the node's by default).
  explicit Scheduler(sim::Node& node, std::vector<int> devices = {});
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // --- Host-level API (Table 2) ---------------------------------------------

  /// Forward-declares a task so the Memory Analyzer can size per-device
  /// allocations (§4.2). Accepts the same arguments as Invoke; non-pattern
  /// arguments (the kernel, constants) are ignored.
  template <typename... Args> void AnalyzeCall(const Args&... args) {
    std::vector<PatternSpec> specs;
    std::optional<Work> work;
    std::vector<std::vector<std::byte>> consts;
    collect(specs, work, consts, args...);
    analyze_task(std::move(specs), work ? &*work : nullptr);
  }

  /// Schedules and runs a MAPS kernel across the devices. The kernel is any
  /// callable `kernel(const maps::ThreadContext&, Patterns&...)`.
  template <typename Kernel, detail::PatternArg... Patterns>
  TaskHandle Invoke(const Kernel& kernel, Patterns... pats) {
    return Invoke(CostHints{}, kernel, std::move(pats)...);
  }

  template <typename Kernel, detail::PatternArg... Patterns>
  TaskHandle Invoke(const CostHints& hints, const Kernel& kernel,
                    Patterns... pats) {
    std::vector<PatternSpec> specs{pats.spec()...};
    auto plan = plan_task(std::move(specs), nullptr, hints,
                          kernel_label<Kernel>());
    auto factory = [this, kernel, pats...](int slot,
                                           const maps::GridContext& grid,
                                           const std::vector<DeviceView>&
                                               views) -> std::function<void()> {
      auto tuple =
          std::make_shared<std::tuple<Patterns...>>(pats...);
      bind_tuple(*tuple, views, slot,
                 std::index_sequence_for<Patterns...>{});
      maps::GridContext gc = grid;
      return [tuple, gc, kernel] { run_device_grid(gc, kernel, *tuple); };
    };
    return dispatch_kernel(plan, factory);
  }

  /// Runs an unmodified GPU routine on all devices (§4.6). `args` may mix
  /// pattern containers and Constant<T> values; `work` defines the
  /// partitioned work space (e.g. Work{n} for SAXPY over n elements).
  template <typename... Args>
  TaskHandle InvokeUnmodified(UnmodifiedRoutine routine, void* context,
                              Work work, const Args&... args) {
    std::vector<PatternSpec> specs;
    std::optional<Work> w = work;
    std::vector<std::vector<std::byte>> consts;
    collect(specs, w, consts, args...);
    auto plan = plan_task(std::move(specs), &*w, CostHints{}, "routine");
    return dispatch_routine(plan, std::move(routine), context,
                            std::move(consts));
  }

  /// Gathers a datum's up-to-date contents back to its bound host buffer,
  /// applying the output pattern's aggregation (§3.2) when needed. Blocking.
  void Gather(Datum& datum);
  /// Asynchronous Gather; completes at the next Wait/WaitAll.
  void GatherAsync(Datum& datum);

  /// Declares that the bound host buffer was modified by host code (e.g. a
  /// host-side parameter update): device replicas become stale and the next
  /// task re-uploads what it needs.
  void MarkHostModified(Datum& datum);

  /// Device-side aggregation of a pending Reductive output (extension of the
  /// paper's §4.5.2 aggregators to the inter-GPU level): each device
  /// receives its aligned rows of every peer's partial copy over the
  /// peer-to-peer interconnect and sums them locally, leaving the datum
  /// partitioned exactly as a Structured Injective output of `work` would
  /// be — no host round trip. Used by the hybrid deep-learning trainer for
  /// the FC-layer deltas (§6.1: "exchanges less data, but more frequently,
  /// between the GPUs").
  void ReduceScatter(Datum& datum, Work work);

  /// Waits for a specific task (conservatively drains the node).
  void Wait(TaskHandle handle);
  /// Waits for all scheduled work.
  void WaitAll();

  // --- Introspection & tuning -----------------------------------------------
  sim::Node& node() { return node_; }
  const std::vector<int>& devices() const { return devices_; }
  int slots() const { return static_cast<int>(devices_.size()); }
  MemoryAnalyzer& analyzer() { return analyzer_; }
  SegmentLocationMonitor& monitor() { return monitor_; }

  /// Rows actually produced into a ReductiveDynamic/Irregular output by the
  /// last Gather of `datum`.
  std::size_t gathered_count(const Datum& datum) const;

  /// Host-side software cost charged per task (scheduler bookkeeping). The
  /// defaults reproduce the paper's sub-1% unmodified-routine overhead
  /// (Table 4); see EXPERIMENTS.md.
  void set_task_overhead_us(double task_us, double per_device_us);

  /// Ablation knob: route every inferred device-to-device exchange through
  /// host RAM (the behaviour of the paper's MPI/host-based baselines)
  /// instead of direct peer-to-peer transfers. Functionally identical,
  /// used by bench/ablation_design_choices to quantify §6.2's argument.
  void set_force_host_staged(bool on) { force_host_staged_ = on; }

  std::uint64_t tasks_scheduled() const { return next_task_ - 1; }

private:
  struct EventRef {
    sim::EventId id = 0;
    bool valid = false;
  };

  /// Tracks which simulated event made each row range of a datum available
  /// at one location. Availability must be range-granular: a halo fill into
  /// a device must not serialize peers that read the device's core rows
  /// (coarse per-location events recreate the very exchange-ring
  /// serialization the framework exists to avoid).
  class IntervalEventMap {
  public:
    /// Overwrites the range with a new producing event.
    void update(const RowInterval& rows, EventRef ev) {
      if (rows.empty() || !ev.valid) {
        return;
      }
      std::vector<std::pair<RowInterval, EventRef>> next;
      for (const auto& [iv, e] : entries_) {
        if (iv.end <= rows.begin || iv.begin >= rows.end) {
          next.emplace_back(iv, e);
          continue;
        }
        if (iv.begin < rows.begin) {
          next.emplace_back(RowInterval{iv.begin, rows.begin}, e);
        }
        if (iv.end > rows.end) {
          next.emplace_back(RowInterval{rows.end, iv.end}, e);
        }
      }
      next.emplace_back(rows, ev);
      entries_ = std::move(next);
    }
    /// Events producing any part of the range.
    void collect(const RowInterval& rows,
                 std::vector<sim::EventId>& out) const {
      for (const auto& [iv, e] : entries_) {
        if (iv.end > rows.begin && iv.begin < rows.end && e.valid) {
          if (std::find(out.begin(), out.end(), e.id) == out.end()) {
            out.push_back(e.id);
          }
        }
      }
    }

  private:
    std::vector<std::pair<RowInterval, EventRef>> entries_;
  };

  /// Range-granular access ordering for one datum's buffer at one location,
  /// in LOCAL buffer rows. Writers must wait for every prior reader/writer
  /// of the rows they touch (WAR/WAW); readers accumulate and are trimmed by
  /// the next write. Granularity matters for the same reason as above: a
  /// peer reading this device's core rows must not order against fills of
  /// its halo slots.
  class AccessMap {
  public:
    void add_reader(const RowInterval& rows, EventRef ev) {
      if (!rows.empty() && ev.valid) {
        entries_.emplace_back(rows, ev);
      }
    }
    void write(const RowInterval& rows, EventRef ev) {
      if (rows.empty() || !ev.valid) {
        return;
      }
      std::vector<std::pair<RowInterval, EventRef>> next;
      for (const auto& [iv, e] : entries_) {
        if (iv.end <= rows.begin || iv.begin >= rows.end) {
          next.emplace_back(iv, e);
          continue;
        }
        if (iv.begin < rows.begin) {
          next.emplace_back(RowInterval{iv.begin, rows.begin}, e);
        }
        if (iv.end > rows.end) {
          next.emplace_back(RowInterval{rows.end, iv.end}, e);
        }
      }
      next.emplace_back(rows, ev);
      entries_ = std::move(next);
    }
    void collect(const RowInterval& rows,
                 std::vector<sim::EventId>& out) const {
      for (const auto& [iv, e] : entries_) {
        if (iv.end > rows.begin && iv.begin < rows.end && e.valid) {
          if (std::find(out.begin(), out.end(), e.id) == out.end()) {
            out.push_back(e.id);
          }
        }
      }
    }

  private:
    std::vector<std::pair<RowInterval, EventRef>> entries_;
  };

  struct PlannedCopy {
    int pattern_index = 0;
    bool zero_fill = false;
    bool whole_buffer = false; ///< zero fill of the entire allocation
    int src_location = 0;
    RowInterval rows;
    // Resolved addresses:
    sim::Buffer* dst_buffer = nullptr;
    std::size_t dst_offset = 0;
    sim::Buffer* src_buffer = nullptr; ///< null when source is the host
    std::size_t src_offset = 0;
    const std::byte* src_host = nullptr;
    std::size_t bytes = 0;
    // Dependencies (producer availability + WAR):
    std::vector<sim::EventId> waits;
    sim::EventId done = 0;
  };

  struct DevicePlan {
    bool active = false;
    maps::GridContext grid;
    std::vector<DeviceView> views;
    std::vector<PlannedCopy> copies;
    std::vector<sim::EventId> kernel_waits;
    sim::EventId kernel_done = 0;
    sim::LaunchStats stats;
    // Routine plumbing:
    std::vector<RoutineParam> params;
    std::vector<Segment> segments;
  };

  struct TaskPlan {
    TaskHandle handle = 0;
    std::vector<PatternSpec> specs;
    TaskPartition partition;
    int active_slots = 0;
    std::vector<DevicePlan> devices;
  };

  using BodyFactory = std::function<std::function<void()>(
      int slot, const maps::GridContext&, const std::vector<DeviceView>&)>;

  template <typename... Args>
  void collect(std::vector<PatternSpec>& specs, std::optional<Work>& work,
               std::vector<std::vector<std::byte>>& consts,
               const Args&... args) {
    auto one = [&](const auto& a) {
      using A = std::decay_t<decltype(a)>;
      if constexpr (detail::PatternArg<A>) {
        specs.push_back(a.spec());
      } else if constexpr (std::is_same_v<A, Work>) {
        work = a;
      } else if constexpr (detail::is_constant_v<A>) {
        const auto* p = reinterpret_cast<const std::byte*>(&a.value);
        consts.emplace_back(p, p + sizeof(a.value));
      } else {
        // Kernel functor or other non-pattern argument: ignored here.
      }
    };
    (one(args), ...);
  }

  template <typename Tuple, std::size_t... I>
  void bind_tuple(Tuple& tuple, const std::vector<DeviceView>& views, int slot,
                  std::index_sequence<I...>) {
    (std::get<I>(tuple).bind(views[I]), ...);
    auto counters = [&](auto& p) {
      using P = std::decay_t<decltype(p)>;
      if constexpr (detail::HasAppendCounter<P>) {
        p.bind_append_counter(append_counter(p.datum(), slot));
      }
    };
    (counters(std::get<I>(tuple)), ...);
  }

  template <typename Kernel> static const char* kernel_label() {
    return "maps_kernel";
  }

  // Non-template heavy lifting (scheduler.cpp):
  void analyze_task(std::vector<PatternSpec> specs, const Work* work);
  std::shared_ptr<TaskPlan> plan_task(std::vector<PatternSpec> specs,
                                      const Work* work, const CostHints& hints,
                                      const char* label);
  TaskHandle dispatch_kernel(std::shared_ptr<TaskPlan> plan,
                             const BodyFactory& factory);
  TaskHandle dispatch_routine(std::shared_ptr<TaskPlan> plan,
                              UnmodifiedRoutine routine, void* context,
                              std::vector<std::vector<std::byte>> consts);
  void enqueue_device_commands(std::shared_ptr<TaskPlan> plan, int slot,
                               std::function<void()> body,
                               UnmodifiedRoutine routine, void* context,
                               std::shared_ptr<std::vector<std::vector<std::byte>>>
                                   consts);
  std::uint64_t* append_counter(const Datum* datum, int slot);
  TaskPartition derive_partition(const std::vector<PatternSpec>& specs,
                                 const Work* work, int slots_eff) const;
  void plan_copies_for(TaskPlan& plan, int slot, int pattern_index,
                       const SegmentReq& req,
                       const MemoryAnalyzer::Alloc& alloc);

  sim::Node& node_;
  std::vector<int> devices_;
  std::vector<sim::StreamId> compute_streams_, copy_streams_, copy_streams2_;
  MemoryAnalyzer analyzer_;
  SegmentLocationMonitor monitor_;
  std::vector<std::unique_ptr<InvokerThread>> invokers_;

  /// Which event made each row range of a datum available at a location
  /// (0=host); GLOBAL rows, range-granular to keep boundary exchanges
  /// parallel.
  std::map<std::pair<const void*, int>, IntervalEventMap> avail_;
  /// Reader/writer ordering per (datum, location), in LOCAL buffer rows.
  std::map<std::pair<const void*, int>, AccessMap> access_;
  /// Per-device append counters for dynamic outputs.
  std::map<const void*, std::shared_ptr<std::vector<std::uint64_t>>>
      append_counts_;
  std::map<const void*, std::shared_ptr<std::size_t>> gathered_counts_;

  /// Staging buffers owned by ReduceScatter, cached per (datum, slot).
  std::map<std::pair<const void*, int>, sim::Buffer*> reduce_staging_;

  bool force_host_staged_ = false;
  double task_overhead_us_ = 60.0;
  double per_device_overhead_us_ = 20.0;
  TaskHandle next_task_ = 1;
};

} // namespace maps::multi
