// The MAPS-Multi Scheduler (§4.3, Algorithm 1): the main component of the
// host-level infrastructure.
//
// The scheduler mediates between the framework and the devices: it
// constructs Tasks from typed function calls, determines the grid
// segmentation strategy from the access patterns, uses the Segmenters /
// Memory Analyzer / Segment Location Monitor to infer allocations and
// inter-GPU transfers, and queues copy and execution commands to each device
// concurrently through per-device Invoker Threads — managing streams and
// events so memory stays consistent.
//
// Steady-state plan caching: the paper's loops (GoL steps, training epochs,
// NMF iterations) issue thousands of identically shaped tasks, and the
// sub-1% host overhead budget of §5.3 (Table 4) only holds if Invoke does
// not replan each of them from scratch. Tasks are fingerprinted by their
// pattern specs, Work and CostHints; a cached plan is replayed when every
// referenced datum's location state matches the state captured at plan time
// (see SegmentLocationMonitor::epoch / state_snapshot). A replay skips
// partitioning, requirement computation, allocation lookup and Algorithm-2
// copy planning, re-wiring only the per-task simulator events and the cheap
// post-task location updates. This is the command-graph-reuse idea of
// Celerity and Lightning's plan-once/execute-many, applied to Algorithm 1.
//
// Public API follows the paper's Table 2: AnalyzeCall, Invoke,
// InvokeUnmodified, Gather, GatherAsync, Wait, WaitAll.
#pragma once

#include <algorithm>
#include <cstdint>
#include <list>
#include <stdexcept>
#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "sim/node.hpp"

#include "multi/datum.hpp"
#include "multi/fault_injector.hpp"
#include "multi/hash_util.hpp"
#include "multi/invoker.hpp"
#include "multi/kernel_exec.hpp"
#include "multi/location_monitor.hpp"
#include "multi/memory_analyzer.hpp"
#include "multi/pattern_spec.hpp"
#include "multi/routine.hpp"
#include "multi/sanitizer.hpp"
#include "multi/segmenter.hpp"
#include "multi/task_cost.hpp"
#include "multi/transfer_planner.hpp"

namespace maps::multi {

using TaskHandle = std::uint64_t;

/// Thrown when the device-memory budget cannot be honoured: a task needs more
/// device memory than the budget even with every evictable resident spilled,
/// or its streamed form cannot fit a single window (budget smaller than one
/// segment's working set), or its shape cannot be streamed at all. The what()
/// string names the offending datum/slot and the relevant byte counts.
class OutOfCoreError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

namespace detail {

template <typename A>
concept PatternArg = requires(const A& a) {
  { a.spec() } -> std::convertible_to<PatternSpec>;
};

template <typename A> struct is_constant : std::false_type {};
template <typename T> struct is_constant<Constant<T>> : std::true_type {};
template <typename A>
inline constexpr bool is_constant_v = is_constant<std::decay_t<A>>::value;

// HasAppendCounter lives in kernel_exec.hpp (the chunked sweep needs it too).

/// Worker-pool-backed sim::FunctionalExecutor (scheduler.cpp): defers each
/// device's kernel body onto the shared ThreadPool so functional sweeps
/// overlap across devices while the event loop keeps scheduling.
class ExecBackend;

} // namespace detail

/// Host-side scheduler cost/health counters (introspection API). Times are
/// host wall-clock (std::chrono), NOT simulated time: the cache changes how
/// much work the host does per Invoke, never what the simulator computes.
struct SchedulerStats {
  std::uint64_t plans_built = 0;    ///< Full Algorithm-1 planning passes.
  std::uint64_t cache_hits = 0;     ///< Invokes served by replay.
  std::uint64_t cache_misses = 0;   ///< Cacheable Invokes that had to build.
  std::uint64_t cache_invalidations = 0; ///< Known shape, no variant matched
                                         ///< the current location state.
  std::uint64_t cache_evictions = 0;     ///< Shapes dropped by the LRU bound.
  std::uint64_t uncacheable_tasks = 0;   ///< e.g. CustomAligned row mappings.
  double plan_time_us = 0.0;   ///< Host time spent building plans.
  double replay_time_us = 0.0; ///< Host time spent replaying cached plans.
  /// Per-phase breakdown of plan_time_us (both are included in it): host
  /// time inside Algorithm 2 source scans vs. the transfer planner's
  /// earliest-finish routing. The cluster bench reports these per task to
  /// show planning stays sub-quadratic in device count.
  double monitor_plan_us = 0.0;
  double route_plan_us = 0.0;
  /// Compute–transfer overlap: sub-kernel launches emitted by interior/
  /// boundary splitting, summed over every dispatched task (builds and
  /// replays alike). Zero when overlap is off or no task was splittable.
  std::uint64_t interior_subkernels = 0;
  std::uint64_t boundary_subkernels = 0;
  /// Transfer accounting summed over every dispatched task (builds and
  /// replays alike — a replayed plan re-contributes the stats baked into its
  /// shape). Byte counters classify each task's planned input transfers by
  /// physical path; see TransferStats.
  TransferStats transfers;
  /// Parallel execution backend (DESIGN.md §5.12): shared worker-pool
  /// counters, refreshed on every stats() read.
  struct ExecStats {
    std::uint32_t threads = 0; ///< configured parallelism (0 = sequential)
    /// Pool jobs executed: block-row chunks plus deferred device sweeps.
    std::uint64_t chunks_executed = 0;
    std::uint64_t chunks_stolen = 0; ///< jobs taken from another queue
    std::uint64_t idle_waits = 0;    ///< times a pool thread went to sleep
  } exec;
  /// Device-loss recovery accounting (fault-tolerance mode only).
  struct RecoveryStats {
    std::uint64_t devices_lost = 0;
    /// Victim segments (or segment chunks) re-executed on survivors:
    /// structured repairs count one per chunk, aggregation repairs one per
    /// re-executed partial.
    std::uint64_t segments_reexecuted = 0;
    /// Input fills of re-executed segments served from the host mirrors
    /// instead of the (dead) device the original plan used.
    std::uint64_t copies_rerouted = 0;
    /// Victim segments that needed no repair because the host already held
    /// their rows: one per datum the victim had spilled under the memory
    /// budget (the write-back precedes every eviction, so the rows are
    /// host-resident by construction), plus losses whose structured repair
    /// was skipped because the host covered every output row of the
    /// victim's segment — spilled segments are restored from the host,
    /// never re-executed.
    std::uint64_t segments_restored_from_host = 0;
    /// Simulated time spent draining + repairing, in simulated microseconds.
    double recovery_sim_us = 0.0;
  } recovery;
  /// Topology-aware partition placement (set_placement_enabled): maps
  /// logical block-row segments onto physical devices so halo neighbours
  /// share a cluster node wherever possible.
  struct PlacementStats {
    std::uint64_t evaluations = 0; ///< tasks the placement pass examined
    std::uint64_t reorders = 0;    ///< tasks where it adopted a new order
    /// Provable node crossings between adjacent segments, before/after the
    /// last adopted reorder (equal when no reorder was ever needed).
    std::uint32_t crossings_before = 0;
    std::uint32_t crossings_after = 0;
  } placement;
  /// Out-of-core execution (set_device_memory_budget; DESIGN.md §5.16):
  /// eviction write-backs, refills of previously spilled rows, and streamed
  /// multi-pass tasks. All-zero under the default unlimited budget.
  SpillStats spill;
};

class Scheduler {
public:
  /// Schedules on the given sim devices (all of the node's by default).
  explicit Scheduler(sim::Node& node, std::vector<int> devices = {});
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // --- Host-level API (Table 2) ---------------------------------------------

  /// Forward-declares a task so the Memory Analyzer can size per-device
  /// allocations (§4.2). Accepts the same arguments as Invoke; non-pattern
  /// arguments (the kernel, constants) are ignored.
  template <typename... Args> void AnalyzeCall(const Args&... args) {
    std::vector<PatternSpec> specs;
    std::optional<Work> work;
    std::vector<std::vector<std::byte>> consts;
    collect(specs, work, consts, args...);
    analyze_task(std::move(specs), work ? &*work : nullptr);
  }

  /// Schedules and runs a MAPS kernel across the devices. The kernel is any
  /// callable `kernel(const maps::ThreadContext&, Patterns&...)`.
  template <typename Kernel, detail::PatternArg... Patterns>
  TaskHandle Invoke(const Kernel& kernel, Patterns... pats) {
    return Invoke(CostHints{}, kernel, std::move(pats)...);
  }

  template <typename Kernel, detail::PatternArg... Patterns>
  TaskHandle Invoke(const CostHints& hints, const Kernel& kernel,
                    Patterns... pats) {
    std::vector<PatternSpec> specs{pats.spec()...};
    auto factory = [this, kernel, pats...](int slot,
                                           const maps::GridContext& grid,
                                           const std::vector<DeviceView>&
                                               views) -> std::function<void()> {
      auto tuple =
          std::make_shared<std::tuple<Patterns...>>(pats...);
      bind_tuple(*tuple, views, slot,
                 std::index_sequence_for<Patterns...>{});
      maps::GridContext gc = grid;
      return [this, tuple, gc, kernel] {
        // Parallel backend (DESIGN.md §5.12): fan the sweep out in
        // cache-sized block-row chunks. exec_pool() is stable while bodies
        // are in flight (set_exec_threads quiesces the node first).
        ThreadPool* pool = exec_pool();
        if (pool == nullptr) {
          run_device_grid(gc, kernel, *tuple);
          return;
        }
        const std::size_t bytes_per_block_row =
            tuple_bytes_per_block_row(*tuple, gc,
                                      std::index_sequence_for<Patterns...>{});
        run_device_grid_chunked(
            gc, kernel, *tuple, *pool,
            exec_chunk_block_rows(gc.block_rows, bytes_per_block_row,
                                  pool->parallelism()));
      };
    };
    // Out-of-core: a task whose working set cannot fit the device-memory
    // budget bypasses plan building entirely and streams over row-windows.
    if (streaming_required(specs, nullptr)) {
      return dispatch_streamed(std::move(specs), nullptr, hints,
                               kernel_label<Kernel>(), factory, nullptr,
                               nullptr, {});
    }
    auto plan = plan_task(std::move(specs), nullptr, hints,
                          kernel_label<Kernel>(), /*splittable=*/true);
    return dispatch_kernel(plan, factory);
  }

  /// Runs an unmodified GPU routine on all devices (§4.6). `args` may mix
  /// pattern containers and Constant<T> values; `work` defines the
  /// partitioned work space (e.g. Work{n} for SAXPY over n elements).
  template <typename... Args>
  TaskHandle InvokeUnmodified(UnmodifiedRoutine routine, void* context,
                              Work work, const Args&... args) {
    std::vector<PatternSpec> specs;
    std::optional<Work> w = work;
    std::vector<std::vector<std::byte>> consts;
    collect(specs, w, consts, args...);
    if (streaming_required(specs, &*w)) {
      return dispatch_streamed(std::move(specs), &*w, CostHints{}, "routine",
                               BodyFactory{}, std::move(routine), context,
                               std::move(consts));
    }
    // Routines run as one opaque launch per device, so they are never split
    // into strips; their copies still benefit from row-range chunking.
    auto plan = plan_task(std::move(specs), &*w, CostHints{}, "routine",
                          /*splittable=*/false);
    return dispatch_routine(plan, std::move(routine), context,
                            std::move(consts));
  }

  /// Gathers a datum's up-to-date contents back to its bound host buffer,
  /// applying the output pattern's aggregation (§3.2) when needed. Blocking.
  void Gather(Datum& datum);
  /// Asynchronous Gather; completes at the next Wait/WaitAll.
  void GatherAsync(Datum& datum);

  /// Declares that the bound host buffer was modified by host code (e.g. a
  /// host-side parameter update): device replicas become stale and the next
  /// task re-uploads what it needs.
  void MarkHostModified(Datum& datum);

  /// Device-side aggregation of a pending Reductive output (extension of the
  /// paper's §4.5.2 aggregators to the inter-GPU level): each device
  /// receives its aligned rows of every peer's partial copy over the
  /// peer-to-peer interconnect and sums them locally, leaving the datum
  /// partitioned exactly as a Structured Injective output of `work` would
  /// be — no host round trip. Used by the hybrid deep-learning trainer for
  /// the FC-layer deltas (§6.1: "exchanges less data, but more frequently,
  /// between the GPUs").
  void ReduceScatter(Datum& datum, Work work);

  /// Waits for a specific task (conservatively drains the node).
  void Wait(TaskHandle handle);
  /// Waits for all scheduled work.
  void WaitAll();

  // --- Introspection & tuning -----------------------------------------------
  sim::Node& node() { return node_; }
  const std::vector<int>& devices() const { return devices_; }
  int slots() const { return static_cast<int>(devices_.size()); }
  MemoryAnalyzer& analyzer() { return analyzer_; }
  SegmentLocationMonitor& monitor() { return monitor_; }

  /// Rows actually produced into a ReductiveDynamic/Irregular output by the
  /// last Gather of `datum`.
  std::size_t gathered_count(const Datum& datum) const;

  /// Parallel functional execution backend (DESIGN.md §5.12): number of
  /// host threads sweeping kernel bodies. 0 selects the sequential legacy
  /// path; n >= 1 installs a shared worker pool that overlaps device sweeps
  /// and splits each sweep into cache-sized block-row chunks. Results are
  /// bit-identical either way (deterministic chunk-ordered merges; see
  /// kernel_exec.hpp). Defaults to std::thread::hardware_concurrency(),
  /// overridable with the MAPS_EXEC_THREADS environment variable. Quiesces
  /// in-flight work before switching. TimingOnly nodes always execute
  /// sequentially (bodies are null there).
  void set_exec_threads(unsigned n);
  unsigned exec_threads() const { return exec_threads_; }

  /// Host-side software cost charged per task (scheduler bookkeeping). The
  /// defaults reproduce the paper's sub-1% unmodified-routine overhead
  /// (Table 4); see EXPERIMENTS.md.
  void set_task_overhead_us(double task_us, double per_device_us);

  /// Ablation knob: route every inferred device-to-device exchange through
  /// host RAM (the behaviour of the paper's MPI/host-based baselines)
  /// instead of direct peer-to-peer transfers. Functionally identical,
  /// used by bench/ablation_design_choices to quantify §6.2's argument.
  /// Forcing host staging also disables the transfer planner: every route is
  /// prescribed, so there is nothing left to plan.
  void set_force_host_staged(bool on) { force_host_staged_ = on; }

  /// Cost-based transfer routing (transfer_planner.hpp; on by default).
  /// When disabled, copies use Algorithm 2's positional source choice
  /// unrouted — simulated *results* are identical either way, only the
  /// simulated timeline changes. The setting is part of the plan-cache
  /// fingerprint, so toggling it mid-run never replays a plan routed under
  /// the other setting.
  void set_transfer_planner_enabled(bool on) {
    transfer_planner_enabled_ = on;
  }
  bool transfer_planner_enabled() const { return transfer_planner_enabled_; }

  /// Compute–transfer overlap (on by default): splits each per-device MAPS
  /// kernel into an interior sub-kernel that never waits on halo traffic
  /// plus boundary strips gated only on their own halo copies, and chunks
  /// large inferred copies into row ranges so row-granular consumers start
  /// as soon as their chunk lands. Simulated *results* are bit-identical on
  /// or off — strips partition the block rows and write disjoint rows — only
  /// the simulated timeline changes. Part of the plan-cache fingerprint.
  void set_overlap_enabled(bool on) { overlap_enabled_ = on; }
  bool overlap_enabled() const { return overlap_enabled_; }
  /// Topology-aware partition placement (off by default). When on, the
  /// segment -> device map is re-derived per task shape so adjacent logical
  /// segments land on the same cluster node wherever the inferred pattern
  /// set makes a node crossing provable (halo inputs): block-row neighbours
  /// exchange halos, so co-locating them converts NetworkStaged crossings
  /// into in-node peer transfers. The cost model is deterministic (counts
  /// provable crossings over sim::Topology node membership; ties keep the
  /// current order), a reorder is adopted only when strictly cheaper, and
  /// the chosen order is part of the plan-cache fingerprint. On single-node
  /// topologies and for the default node-contiguous device enumeration the
  /// canonical order equals the current one, so enabling placement is a
  /// no-op there — results are bit-identical on or off in all cases; only
  /// the simulated timeline changes.
  void set_placement_enabled(bool on) { placement_enabled_ = on; }
  bool placement_enabled() const { return placement_enabled_; }
  /// Row-range chunking threshold for large inferred copies, in bytes
  /// (0 disables chunking; only applies while overlap is enabled).
  void set_copy_chunk_bytes(std::size_t bytes) { copy_chunk_bytes_ = bytes; }
  std::size_t copy_chunk_bytes() const { return copy_chunk_bytes_; }
  /// Cost gate on splitting: a task is split only when the estimated halo
  /// transfer chain (latency + bytes over the slowest inter-device link)
  /// exceeds `factor` times the added sub-kernel launch overhead. 0 forces
  /// splitting whenever it is structurally possible (used by tests); the
  /// default of 1 declines splits that would trade a cheap exchange for two
  /// extra kernel launches.
  void set_overlap_min_benefit(double factor) { overlap_min_benefit_ = factor; }

  /// Out-of-core execution (DESIGN.md §5.16): per-device byte budget for
  /// analyzer-materialized buffers. 0 (the default) is the legacy unlimited
  /// in-core behaviour. Under a budget, plan builds evict least-recently-
  /// touched residents (dirty rows written back to the bound host buffers,
  /// the holding marked spilled) until the task fits, and a task whose own
  /// working set exceeds the budget runs as a streamed multi-pass sweep over
  /// resident row-windows. Results are bit-identical to the unlimited run.
  /// Changing the budget mid-chain quiesces in-flight work and clears the
  /// plan cache (cached plans point into buffers the new policy may evict);
  /// the budget is part of the plan-cache fingerprint. Throws OutOfCoreError
  /// when a budget cannot be honoured.
  void set_device_memory_budget(std::size_t bytes);
  std::size_t device_memory_budget() const { return device_memory_budget_; }
  /// Streamed-pass prefetch (on by default): the refill of window p+1 is
  /// issued as soon as window p-1's drain frees its double buffer, so it
  /// overlaps window p's kernel. Off serializes each window's evict-then-
  /// refill (the naive baseline bench/out_of_core compares against).
  /// Results are bit-identical either way; only the timeline changes.
  void set_spill_prefetch_enabled(bool on) { spill_prefetch_ = on; }
  bool spill_prefetch_enabled() const { return spill_prefetch_; }

  std::uint64_t tasks_scheduled() const { return next_task_ - 1; }

  // --- Plan cache & stats ---------------------------------------------------

  /// Steady-state plan caching (on by default). Disabling it makes every
  /// Invoke replan from scratch; simulated results are identical either way.
  void set_plan_cache_enabled(bool on) { plan_cache_enabled_ = on; }
  bool plan_cache_enabled() const { return plan_cache_enabled_; }
  /// LRU bound on distinct cached task shapes (0 disables caching).
  void set_plan_cache_capacity(std::size_t n);
  std::size_t plan_cache_size() const { return cache_.size(); }

  const SchedulerStats& stats() const {
    refresh_exec_stats();
    return stats_;
  }
  /// Resets ALL counters to a freshly-constructed state — scheduler stats
  /// (cache, transfers, overlap, recovery) and, when the sanitizer is
  /// enabled, its violation/check counters too.
  void reset_stats();

  // --- Access sanitizer & fault injection -----------------------------------

  /// Enables the runtime access sanitizer (sanitizer.hpp): a shadow
  /// write-version map advanced at dispatch time, asserting before each
  /// kernel that every input rectangle is read at its latest version. Must
  /// be enabled before any task is scheduled (the shadow map tracks state
  /// from the first task on). Off by default; when off the only cost is one
  /// pointer test per dispatch.
  void set_sanitizer_enabled(bool on);
  bool sanitizer_enabled() const { return sanitizer_ != nullptr; }
  /// Null when the sanitizer is disabled.
  AccessSanitizer* sanitizer() { return sanitizer_.get(); }

  /// Fault tolerance (host mirroring + device-loss recovery; §5.11 of
  /// DESIGN.md). When enabled, every task output's core rows are mirrored
  /// asynchronously to the bound host buffer after dispatch, so the host
  /// always holds a fresh copy of every non-pending datum. A device loss is
  /// then recoverable at depth 1: the victim's unfinished segments are
  /// re-partitioned across survivors and re-executed from the mirrors, and
  /// its pending aggregation partials are re-computed and folded in.
  /// Results after recovery are bit-identical to a fault-free run.
  /// Must be set before any task is scheduled; off by default.
  void set_fault_tolerance_enabled(bool on);
  bool fault_tolerance_enabled() const { return fault_tolerance_; }
  /// Installs a device-loss injector (fault_injector.hpp), consulted per
  /// live slot at CopiesIssued/KernelIssued boundaries of every MAPS-kernel
  /// dispatch and at PreGather on Gather entry. At most one kill fires per
  /// dispatch. Requires fault tolerance to recover; pass nullptr to clear.
  void set_fault_injector(FaultInjector injector) {
    injector_ = std::move(injector);
  }
  /// Kills a device immediately (drain-completes model: enqueued work
  /// finishes first) and runs recovery. Requires fault tolerance enabled;
  /// throws std::logic_error otherwise or if the slot is already dead.
  void kill_device(int slot);
  /// Kills every live device of one cluster node (a whole-node loss: the
  /// machine and its NIC go away together) and recovers each in turn via the
  /// kill_device path — results stay bit-identical to a fault-free run.
  /// Throws std::invalid_argument for an out-of-range node, std::logic_error
  /// when the node has no live devices left (mirroring the already-dead slot
  /// check), and std::runtime_error if the loss would leave no live device.
  void kill_node(int cluster_node);
  /// Slots still alive, in ascending order (all slots before any loss).
  const std::vector<int>& live_devices() const { return live_; }
  bool device_lost(int slot) const {
    return dead_.at(static_cast<std::size_t>(slot));
  }

  /// One planned copy offered to the fault hook before dispatch.
  struct CopyFaultInfo {
    const Datum* datum = nullptr;
    int src_location = 0; ///< 0 = host, 1 + slot = device
    int dst_location = 0;
    RowInterval rows;     ///< GLOBAL rows (empty for zero fills)
    bool zero_fill = false;
    bool aligned = false; ///< rows land at their global position
    TaskHandle task = 0;
  };
  /// Test-only fault injection: the hook sees every planned copy of every
  /// dispatch (build or replay) and returns true to silently DROP it — the
  /// simulator never executes the transfer, while the location monitor and
  /// plan cache still believe it happened. This simulates a transfer-
  /// inference bug; with the sanitizer enabled the resulting stale read is
  /// reported with the exact rectangle.
  using CopyFaultHook = std::function<bool(const CopyFaultInfo&)>;
  void set_copy_fault_hook(CopyFaultHook hook) {
    copy_fault_hook_ = std::move(hook);
  }
  /// Live entries across all availability/access interval maps. Bounded in
  /// steady state (coalesced storage); unbounded growth here means a
  /// dependency-tracking leak.
  std::size_t live_dependency_intervals() const;

private:
  /// One planned data movement. Everything here is STRUCTURAL — a function of
  /// the task shape and the location-monitor state at build time — so a
  /// cached plan shares it read-only across replays; the per-dispatch event
  /// wiring lives in the parallel CopyWiring. The interval-map pointers are
  /// resolved once at build time (unordered_map values are address-stable and
  /// never erased), saving a hash lookup per map per dispatch.
  struct PlannedCopy {
    int pattern_index = 0;
    bool zero_fill = false;
    bool whole_buffer = false; ///< zero fill of the entire allocation
    bool aligned = false; ///< rows land at their global position (see below)
    int src_location = 0;
    int dst_location = 0;
    /// Planner path override: bounce this in-node device->device copy
    /// through host RAM (see SegmentLocationMonitor::CopyOp::via_host).
    bool via_host = false;
    Datum* datum = nullptr;
    RowInterval rows;      ///< GLOBAL rows copied (empty for zero fills)
    RowInterval dst_local; ///< destination rows in LOCAL buffer coordinates
    RowInterval src_local; ///< source rows in the source's LOCAL coordinates
    // Resolved addresses:
    sim::Buffer* dst_buffer = nullptr;
    std::size_t dst_offset = 0;
    sim::Buffer* src_buffer = nullptr; ///< null when source is the host
    std::size_t src_offset = 0;
    const std::byte* src_host = nullptr;
    std::size_t bytes = 0;
    // Dependency-tracking maps this copy consults (null for zero fills
    // except dst_access):
    IntervalEventMap* src_avail = nullptr;
    IntervalEventMap* dst_avail = nullptr;
    AccessIntervalMap* src_access = nullptr;
    AccessIntervalMap* dst_access = nullptr;
  };

  /// Fresh-per-dispatch event wiring of one PlannedCopy. The wait list is a
  /// range of the owning DeviceWiring's flat wait_pool — one allocation per
  /// device per dispatch instead of one per copy.
  struct CopyWiring {
    std::uint32_t wait_begin = 0;
    std::uint32_t wait_end = 0;
    sim::EventId done = 0;
    bool dropped = false; ///< Fault injection: copy suppressed this dispatch.
  };

  /// Post-task location/ordering effects of one pattern on one device,
  /// recorded at build time so a replay can re-apply them without recomputing
  /// segment requirements.
  struct PatternPost {
    bool active = false;
    bool is_input = true;
    bool private_copy = false;
    Datum* datum = nullptr;
    RowInterval core;       ///< GLOBAL rows this device owns for the pattern
    RowInterval core_local; ///< same, in LOCAL buffer rows
    RowInterval produced;   ///< GLOBAL rows the kernel makes up to date
    RowInterval local_span; ///< whole local buffer (what an input reads)
    IntervalEventMap* avail = nullptr;  ///< this device's availability map
    AccessIntervalMap* access = nullptr; ///< this device's ordering map
    // The kernel's input read rectangles in GLOBAL datum rows, split by
    // whether they land at their global position (see split_read_rows).
    // Structural (a function of the task shape), so cached plans carry them
    // through replays — which is exactly where the sanitizer needs them.
    std::vector<RowInterval> reads;
    std::vector<RowInterval> halo_reads;
  };

  /// Rows one interior/boundary strip touches for one pattern, precomputed
  /// at build time (structural, shared through replays). Empty intervals
  /// mean the pattern is inactive on the device or untouched by the strip.
  struct StripSpan {
    RowInterval read_local;  ///< input rows read, LOCAL (alloc) coordinates
    RowInterval read_global; ///< aligned input rows read, GLOBAL datum rows
    RowInterval out_local;   ///< output rows written, LOCAL coordinates
    RowInterval out_global;  ///< output rows written, GLOBAL datum rows
  };

  /// One interior or boundary sub-kernel of a split device task. The grid is
  /// the device grid narrowed to the strip's block rows, so the same body
  /// factory produces a bit-identical partial sweep; stats are the device
  /// launch stats scaled by the strip's block-row share.
  struct SubKernel {
    maps::GridContext grid;
    bool boundary = false;
    sim::LaunchStats stats;
    std::vector<StripSpan> spans;          ///< parallel to PlanShape::specs
    /// Indices into DevicePlan::copies whose destination rows overlap this
    /// strip's reads — the only transfers the strip waits for (ascending).
    std::vector<std::uint32_t> copy_waits;
    std::uint32_t wait_hint = 0; ///< build-time wait count, replay reserve()
  };

  struct DevicePlan {
    bool active = false;
    maps::GridContext grid;
    std::vector<DeviceView> views;
    std::vector<PlannedCopy> copies;
    std::vector<PatternPost> post;
    sim::LaunchStats stats;
    /// Interior/boundary sub-kernels (empty = single launch, the legacy
    /// path). Ascending block-row order, at most one interior strip.
    std::vector<SubKernel> sub;
    // Routine plumbing:
    std::vector<RoutineParam> params;
    std::vector<Segment> segments;
    // Build-time wiring sizes, used as reserve() hints on replay:
    std::uint32_t wait_pool_hint = 0;
    std::uint32_t kernel_wait_hint = 0;
  };

  /// Per-dispatch event wiring of one sub-kernel strip.
  struct StripWiring {
    std::vector<sim::EventId> waits;
    sim::EventId done = 0;
  };

  /// Per-dispatch event wiring of one device: copy dependencies and the
  /// kernel ordering events, all recreated for every Invoke.
  struct DeviceWiring {
    std::vector<sim::EventId> wait_pool; ///< flattened per-copy wait lists
    std::vector<CopyWiring> copies;      ///< parallel to DevicePlan::copies
    std::vector<sim::EventId> kernel_waits;
    sim::EventId kernel_done = 0;
    std::vector<StripWiring> strips; ///< parallel to DevicePlan::sub
  };

  /// The immutable product of one full Algorithm-1 planning pass. Shared
  /// (read-only) between the plan cache and every replayed dispatch, so a
  /// cache hit never copies specs, views or copy lists.
  struct PlanShape {
    std::vector<PatternSpec> specs;
    TaskPartition partition;
    int active_slots = 0;
    std::vector<DevicePlan> devices;
    /// Transfer accounting of this task's planned copies (routing + byte
    /// attribution). Structural like everything else here: a replayed plan
    /// dispatches the same transfers, so it re-contributes the same stats.
    TransferStats transfers;
    /// Refills of previously spilled rows among this task's planned copies
    /// (their routing/byte attribution lands here instead of `transfers`).
    SpillStats spill;
    /// Overlap setting the plan was built under: replays must mirror the
    /// build's dependency wiring exactly (see wire_strips / the legacy-path
    /// availability waits), so the flag travels with the shape.
    bool overlap = false;
    std::uint32_t interior_launches = 0;
    std::uint32_t boundary_launches = 0;
  };

  struct TaskPlan {
    TaskHandle handle = 0;
    std::shared_ptr<const PlanShape> shape;
    std::vector<DeviceWiring> wiring; ///< parallel to shape->devices
    TaskPlan* recycle_next = nullptr; ///< intrusive link, see plan recycling
  };

  // --- Plan cache -----------------------------------------------------------

  /// Canonical word encoding of everything the planning pass depends on
  /// besides location-monitor state: per-spec pattern descriptors and datum
  /// identity/shape, Work, CostHints and the cost label.
  struct PlanFingerprint {
    std::vector<std::uint64_t> words;
    std::uint64_t hash = 0;
    friend bool operator==(const PlanFingerprint& a, const PlanFingerprint& b) {
      return a.hash == b.hash && a.words == b.words;
    }
  };
  struct FingerprintHash {
    std::size_t operator()(const PlanFingerprint& fp) const {
      return static_cast<std::size_t>(fp.hash);
    }
  };

  /// Location-monitor state of one referenced datum, captured immediately
  /// before the build's own mutations. `epoch` equality is the O(1) fast
  /// path; steady-state loops cycle the monitor through a periodic state
  /// sequence, so on epoch mismatch the exact snapshot decides and, on
  /// match, re-arms the stored epoch.
  struct DatumCapture {
    const Datum* datum = nullptr;
    const void* host_ptr = nullptr; ///< bound buffer; re-Bind invalidates
    mutable std::uint64_t epoch = 0;
    std::vector<std::uint64_t> snapshot;
  };

  /// Post-build location state of one referenced datum. Replay restores it
  /// wholesale: the hit proved the pre-states equal, so the post-state is
  /// the same deterministic function of (plan, pre-state) — recomputing it
  /// through mark_copied / mark_written per replay would be pure waste.
  struct DatumPostState {
    const Datum* datum = nullptr;
    SegmentLocationMonitor::StateCopy state;
  };

  /// One cached plan shape together with the monitor state it was built
  /// under (`captures`, the validity oracle) and the state it left behind
  /// (`post_state`, applied on replay).
  struct CacheEntry {
    std::shared_ptr<const PlanShape> shape;
    std::vector<DatumCapture> captures;
    std::vector<DatumPostState> post_state;
  };

  /// All cached variants of one fingerprint. A task shape that is invoked
  /// from several points of a loop body sees a different (but per-site
  /// periodic) monitor state at each site — e.g. NMF calls the same V-tilde
  /// task before and after MarkHostModified(H). A single entry would
  /// ping-pong between the sites and never hit, so each fingerprint keeps a
  /// small MRU-ordered set of state variants.
  struct CacheSlot {
    std::vector<CacheEntry> variants; ///< front = most recently used
    std::list<PlanFingerprint>::iterator lru_it;
  };
  static constexpr std::size_t kVariantsPerFingerprint = 4;

  using BodyFactory = std::function<std::function<void()>(
      int slot, const maps::GridContext&, const std::vector<DeviceView>&)>;

  template <typename... Args>
  void collect(std::vector<PatternSpec>& specs, std::optional<Work>& work,
               std::vector<std::vector<std::byte>>& consts,
               const Args&... args) {
    auto one = [&](const auto& a) {
      using A = std::decay_t<decltype(a)>;
      if constexpr (detail::PatternArg<A>) {
        specs.push_back(a.spec());
      } else if constexpr (std::is_same_v<A, Work>) {
        work = a;
      } else if constexpr (detail::is_constant_v<A>) {
        const auto* p = reinterpret_cast<const std::byte*>(&a.value);
        consts.emplace_back(p, p + sizeof(a.value));
      } else {
        // Kernel functor or other non-pattern argument: ignored here.
      }
    };
    (one(args), ...);
  }

  template <typename Tuple, std::size_t... I>
  void bind_tuple(Tuple& tuple, const std::vector<DeviceView>& views, int slot,
                  std::index_sequence<I...>) {
    (std::get<I>(tuple).bind(views[I]), ...);
    auto counters = [&](auto& p) {
      using P = std::decay_t<decltype(p)>;
      if constexpr (detail::HasAppendCounter<P>) {
        p.bind_append_counter(append_counter(p.datum(), slot));
      }
    };
    (counters(std::get<I>(tuple)), ...);
  }

  /// Bytes one virtual block row touches across every bound view — the
  /// working-set estimate exec_chunk_block_rows caps chunk sizes with.
  template <typename Tuple, std::size_t... I>
  static std::size_t tuple_bytes_per_block_row(const Tuple& tuple,
                                               const maps::GridContext& gc,
                                               std::index_sequence<I...>) {
    std::size_t row_bytes = 0;
    ((row_bytes += std::get<I>(tuple).view().pitch), ...);
    return row_bytes * gc.block_dim.y * gc.ilp_y;
  }

  template <typename Kernel> static const char* kernel_label() {
    return "maps_kernel";
  }

  // Non-template heavy lifting (scheduler.cpp):
  void analyze_task(std::vector<PatternSpec> specs, const Work* work);
  /// Topology-aware partition placement: reorders live_ (the segment ->
  /// slot map) so adjacent halo-exchanging segments share a cluster node
  /// when that provably removes node crossings. Runs before fingerprinting
  /// and before any segment -> slot use; no-op unless placement is enabled,
  /// the topology is a cluster, and the pattern set has halo inputs.
  void apply_placement(const std::vector<PatternSpec>& specs);
  std::shared_ptr<TaskPlan> plan_task(std::vector<PatternSpec> specs,
                                      const Work* work, const CostHints& hints,
                                      const char* label, bool splittable);
  std::shared_ptr<TaskPlan> build_plan(std::vector<PatternSpec> specs,
                                       const Work* work,
                                       const CostHints& hints,
                                       const char* label, bool splittable);
  std::shared_ptr<TaskPlan> replay_plan(const CacheEntry& entry);
  /// Hands out a TaskPlan for replay, recycling retired ones: the custom
  /// deleter returns the object to `plan_recycle_` when the last reference
  /// (typically an invoker queue's) drops, so steady-state replays reuse
  /// wiring vectors at full capacity instead of allocating. Only replay
  /// plans carry the deleter; build_plan's plans are freed normally.
  std::shared_ptr<TaskPlan> acquire_replay_plan();
  static bool cacheable(const std::vector<PatternSpec>& specs);
  PlanFingerprint fingerprint(const std::vector<PatternSpec>& specs,
                              const Work* work, const CostHints& hints,
                              const char* label, bool splittable) const;
  std::vector<DatumCapture>
  capture_datums(const std::vector<PatternSpec>& specs) const;
  std::vector<DatumPostState>
  capture_post_states(const std::vector<PatternSpec>& specs,
                      const std::vector<DatumCapture>& pre) const;
  bool captures_valid(const std::vector<DatumCapture>& captures) const;
  void cache_insert(PlanFingerprint fp, std::shared_ptr<const PlanShape> shape,
                    std::vector<DatumCapture> captures,
                    std::vector<DatumPostState> post_state);
  /// (Re)wires one planned copy against the CURRENT dependency state: fresh
  /// waits, the given done event, and the availability side effects of
  /// issuing it. Shared verbatim by build and replay so both produce the
  /// same command sequence; only the build updates the location monitor
  /// (replay restores the captured post-state in one step instead).
  void wire_copy(const PlannedCopy& c, DeviceWiring& dw, CopyWiring& w,
                 sim::EventId done, bool update_monitor);
  /// Applies the post-task ordering state for one device from the plan's
  /// PatternPost records (kernel reads/writes); the build also applies the
  /// monitor marks.
  void commit_post_state(const DevicePlan& dp, const DeviceWiring& dw,
                         int slot, bool update_monitor);
  /// Structural eligibility for interior/boundary splitting: every pattern
  /// PartitionAligned (1/1 row scale) or a replicated input, no aggregating
  /// outputs, and at least one windowed (radius > 0) partitioned input to
  /// overlap against.
  static bool overlap_eligible(const std::vector<PatternSpec>& specs);
  /// Cost gate: estimated halo-exchange chain vs. the added launch overhead
  /// of two extra strips (see set_overlap_min_benefit).
  bool overlap_profitable(const std::vector<PatternSpec>& specs) const;
  /// Build-side strip construction for one split device: sub-kernel grids,
  /// per-pattern read/write spans, copy gating and scaled launch stats.
  void build_strips(PlanShape& shape, DevicePlan& dp, int seg,
                    const std::vector<SegmentReq>& reqs,
                    const std::vector<const MemoryAnalyzer::Alloc*>& allocs,
                    const std::vector<StripRange>& ranges);
  /// (Re)wires a split device's strips against the CURRENT dependency state:
  /// copy-done gates, availability of aligned reads, WAR on written rows.
  /// Shared verbatim by build and replay; strips consume consecutive event
  /// ids starting at `first`.
  void wire_strips(const DevicePlan& dp, DeviceWiring& dw, sim::EventId first);
  /// Accumulates a dispatched plan's per-shape counters into stats_ (shared
  /// by the build, cache-hit and cache-miss paths of plan_task).
  void account_dispatch(const PlanShape& shape);
  /// Registers pending aggregations for Reductive/Unstructured outputs
  /// (build only) and resets append counters.
  void commit_aggregations(const PlanShape& shape, bool update_monitor);
  /// Offers every planned copy to the fault hook (sets CopyWiring::dropped).
  void apply_copy_faults(TaskPlan& plan);
  /// Advances the sanitizer's shadow version map by this dispatch's copies,
  /// reads, writes and aggregations, in program order. Runs on the main
  /// thread before the plan is handed to the invokers, for builds and
  /// replays alike.
  void sanitize_dispatch(const TaskPlan& plan);
  TaskHandle dispatch_kernel(std::shared_ptr<TaskPlan> plan,
                             const BodyFactory& factory);
  TaskHandle dispatch_routine(std::shared_ptr<TaskPlan> plan,
                              UnmodifiedRoutine routine, void* context,
                              std::vector<std::vector<std::byte>> consts);
  /// `copies_only` truncates the device's job after its inferred input
  /// copies: no strips, no kernel, no kernel_done record. Used to model a
  /// CopiesIssued device loss (the victim received its inputs but never
  /// computed); safe because recovery resets the victim's ordering maps
  /// before any survivor could wait on the unrecorded events.
  void enqueue_device_commands(std::shared_ptr<TaskPlan> plan, int slot,
                               std::vector<std::function<void()>> bodies,
                               UnmodifiedRoutine routine, void* context,
                               std::shared_ptr<std::vector<std::vector<std::byte>>>
                                   consts,
                               bool copies_only = false);
  // --- Fault tolerance (scheduler_recovery in scheduler.cpp) ---------------
  /// Records last_task_ and the per-datum aggregation logs for one dispatch
  /// (factory is null for unmodified routines — they cannot be re-executed
  /// per segment, so a mid-routine loss is unrecoverable).
  void record_task_logs(const std::shared_ptr<TaskPlan>& plan,
                        const BodyFactory& factory);
  /// Enqueues async d2h mirrors of every active non-private output's core
  /// rows to the bound host buffers (fault-tolerance mode). `skip_slot`
  /// suppresses the mirror of a just-killed victim (-1 = none).
  void enqueue_host_mirrors(const TaskPlan& plan, int skip_slot);
  /// Drain-completes device loss: flushes + synchronizes, marks the slot
  /// dead, invalidates its holdings/plans/ordering state, clears the plan
  /// cache, then re-executes the victim's unfinished work on survivors.
  void recover_device(int victim, KillStage stage);
  /// Re-runs the victim's lost segment of the last dispatched task, chunked
  /// across survivors, from the host mirrors; writes results to the host.
  void repair_structured(int victim, KillStage stage,
                         std::vector<sim::Buffer*>& temps);
  /// Re-computes the victim's pending aggregation partials (Reductive Sum)
  /// on a surviving writer and folds them into that survivor's partial.
  void repair_aggregations(int victim, std::vector<sim::Buffer*>& temps);
  int live_count() const { return static_cast<int>(live_.size()); }
  std::uint64_t* append_counter(const Datum* datum, int slot);
  TaskPartition derive_partition(const std::vector<PatternSpec>& specs,
                                 const Work* work, int slots_eff) const;
  void plan_copies_for(PlanShape& shape, DeviceWiring& dw, int slot,
                       int pattern_index, const SegmentReq& req,
                       const MemoryAnalyzer::Alloc& alloc);

  // --- Out-of-core execution (DESIGN.md §5.16) ------------------------------
  /// True when the device-memory budget forces streaming: some active slot's
  /// working set for this task alone (planned bytes over its deduped datums)
  /// exceeds the budget. Registers the task's datums and records its
  /// requirements as a side effect (idempotent hull growth, same as
  /// AnalyzeCall). Always false under the unlimited default budget.
  bool streaming_required(const std::vector<PatternSpec>& specs,
                          const Work* work);
  /// Budget enforcement for in-core builds (called from build_plan before
  /// allocations materialize): evicts least-recently-touched residents the
  /// task does not reference, per active slot, until the task's datums fit.
  /// Throws OutOfCoreError when they cannot.
  void enforce_budget(const std::vector<PatternSpec>& specs, int slots_eff);
  /// Writes one (datum, slot) allocation's dirty rows back to the bound host
  /// buffer, marks the holding spilled, resets the location's ordering maps
  /// and frees the buffer. The first eviction of a wave quiesces in-flight
  /// work and drops the plan cache (`quiesced`); later ones reuse the drain.
  void spill_allocation(const Datum* datum, int slot, bool& quiesced);
  /// Makes the bound host buffer authoritative for every row of `datum`
  /// (synchronous d2h of whatever the monitor says the host is missing).
  /// Streamed tasks flush their inputs through this before windowing.
  void flush_datum_to_host(Datum* datum);
  /// Streamed multi-pass execution of one task over resident row-windows —
  /// the out-of-core tentpole. Bypasses plan building and the plan cache;
  /// windows are spans of the partition's block rows, so every pass is a
  /// pure function of the partition and results are bit-identical to the
  /// in-core dispatch. Synchronous (the node is drained on return); outputs
  /// land in the bound host buffers. `factory` is null for routines.
  TaskHandle dispatch_streamed(std::vector<PatternSpec> specs,
                               const Work* work, const CostHints& hints,
                               const char* label, const BodyFactory& factory,
                               UnmodifiedRoutine routine, void* context,
                               std::vector<std::vector<std::byte>> consts);

  /// True when plan builds should route copies through the transfer planner
  /// (forced host staging prescribes every route, leaving nothing to plan).
  bool planner_active() const {
    return transfer_planner_enabled_ && !force_host_staged_;
  }

  /// The execution backend's worker pool, or null on the sequential path.
  ThreadPool* exec_pool();
  /// Copies the pool counters into stats_.exec (no-op when sequential).
  void refresh_exec_stats() const;

  sim::Node& node_;
  std::vector<int> devices_;
  std::vector<sim::StreamId> compute_streams_, copy_streams_, copy_streams2_;
  /// Dedicated per-device stream for reduce-scatter sum/combine kernels, so
  /// they wait only on their event dependencies (and the compute engine),
  /// not on stream order behind the device's whole kernel backlog.
  std::vector<sim::StreamId> reduce_streams_;
  /// Per-device stream for boundary strip sub-kernels: boundary strips wait
  /// on their halo copies without blocking the interior strip's launch on
  /// the main compute stream (they still share the compute engine).
  std::vector<sim::StreamId> boundary_streams_;
  MemoryAnalyzer analyzer_;
  SegmentLocationMonitor monitor_;
  TransferPlanner planner_;
  std::vector<std::unique_ptr<InvokerThread>> invokers_;

  /// Which event made each row range of a datum available at a location
  /// (0=host); GLOBAL rows, range-granular to keep boundary exchanges
  /// parallel.
  std::unordered_map<std::pair<const void*, int>, IntervalEventMap,
                     PtrIntPairHash>
      avail_;
  /// Reader/writer ordering per (datum, location), in LOCAL buffer rows.
  std::unordered_map<std::pair<const void*, int>, AccessIntervalMap,
                     PtrIntPairHash>
      access_;
  /// Per-device append counters for dynamic outputs.
  std::unordered_map<const void*,
                     std::shared_ptr<std::vector<std::uint64_t>>>
      append_counts_;
  std::unordered_map<const void*, std::shared_ptr<std::size_t>>
      gathered_counts_;

  /// Staging buffers owned by ReduceScatter, cached per (datum, slot).
  std::unordered_map<std::pair<const void*, int>, sim::Buffer*, PtrIntPairHash>
      reduce_staging_;
  /// Staging for the in-pair pre-combine of the hierarchical reduce-scatter,
  /// cached per (datum, target * slots + combiner).
  std::unordered_map<std::pair<const void*, int>, sim::Buffer*, PtrIntPairHash>
      combine_staging_;

  /// Steady-state plan cache: fingerprint → state variants of (immutable
  /// plan, captured location state), LRU-bounded by fingerprint.
  std::unordered_map<PlanFingerprint, CacheSlot, FingerprintHash> cache_;
  std::list<PlanFingerprint> lru_; ///< front = most recently used
  bool plan_cache_enabled_ = true;
  std::size_t plan_cache_capacity_ = 64;
  /// mutable: stats() refreshes the exec-pool counters on read.
  mutable SchedulerStats stats_;

  /// Plan recycling. Retired replay plans are pushed onto a Treiber stack
  /// by their deleter (lock-free, runs on whichever invoker thread drops
  /// the last reference); acquire_replay_plan drains the stack wholesale
  /// with one exchange and serves from a main-thread local list. Reused
  /// plans keep their wiring vectors' capacity, so steady-state replays
  /// allocate nothing. The circulating set is bounded by the peak number of
  /// plans in flight. Invokers are drained in the destructor before these
  /// members die, so no deleter outlives them.
  std::atomic<TaskPlan*> plan_recycle_head_{nullptr};
  std::vector<std::unique_ptr<TaskPlan>> plan_recycle_local_;

  std::unique_ptr<AccessSanitizer> sanitizer_; ///< null = disabled
  CopyFaultHook copy_fault_hook_;

  // --- Fault tolerance state ------------------------------------------------
  bool fault_tolerance_ = false;
  FaultInjector injector_;
  /// Slots still alive, ascending. All partitioning/segmentation indexes
  /// SEGMENTS [0, live_count()) which map to physical slots through this
  /// vector; per-device resources (streams, invokers, ordering maps, the
  /// location monitor) stay physically indexed.
  std::vector<int> live_;
  std::vector<bool> dead_;
  /// The last dispatched MAPS-kernel task, kept so a mid-task loss can
  /// re-execute the victim's segment. Depth 1 suffices: host mirrors make
  /// every older result host-resident already.
  struct TaskLog {
    bool valid = false;
    std::shared_ptr<const PlanShape> shape;
    BodyFactory factory;
    TaskHandle handle = 0;
    std::vector<int> live; ///< live_ at dispatch (seg → slot map)
  };
  TaskLog last_task_;
  /// Per-datum log of the task that produced a still-pending aggregation,
  /// so a loss can re-run the victim's partial. Entries persist after the
  /// aggregation resolves (guarded by the monitor's pending record) and are
  /// overwritten by the next aggregating task on the datum.
  struct AggLog {
    const Datum* datum = nullptr;
    std::shared_ptr<const PlanShape> shape;
    BodyFactory factory; ///< null for routines (unrecoverable)
    std::vector<int> live;
    /// Host-content stamps of every input at dispatch: a repair is only
    /// sound while the mirrors still hold the values the task consumed.
    std::vector<std::pair<const void*, std::uint64_t>> input_stamps;
  };
  std::unordered_map<const void*, AggLog> agg_log_;
  /// Monotonic per-datum stamp of host-buffer content changes (mirrors,
  /// gathers, MarkHostModified, repairs). Cheap staleness guard for AggLog.
  std::unordered_map<const void*, std::uint64_t> host_content_stamp_;

  // --- Out-of-core state ----------------------------------------------------
  std::size_t device_memory_budget_ = 0; ///< bytes per device; 0 = unlimited
  bool spill_prefetch_ = true;
  /// LRU recency per (datum key, slot): bumped once per task reference on
  /// every live slot, read by enforce_budget's eviction ordering. Keys of
  /// destroyed datums linger harmlessly (never dereferenced).
  std::uint64_t touch_counter_ = 0;
  std::unordered_map<std::pair<const void*, int>, std::uint64_t,
                     PtrIntPairHash>
      last_touch_;

  bool force_host_staged_ = false;
  bool transfer_planner_enabled_ = true;
  bool overlap_enabled_ = true;
  bool placement_enabled_ = false;
  /// 4 MiB: small enough that a GEMM stripe pipelines through a fan-out tree
  /// in ~16 pieces, large enough that per-copy latency stays negligible.
  std::size_t copy_chunk_bytes_ = 4u << 20;
  double overlap_min_benefit_ = 1.0;
  double task_overhead_us_ = 60.0;
  double per_device_overhead_us_ = 20.0;
  TaskHandle next_task_ = 1;

  /// Parallel execution backend (declared last: the destructor body also
  /// tears it down explicitly after draining the invokers and unhooking the
  /// node, so no deferred body can outlive the pool).
  unsigned exec_threads_ = 0;
  std::unique_ptr<detail::ExecBackend> exec_backend_;
};

} // namespace maps::multi
