#include "multi/transfer_planner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/cost_model.hpp"

namespace maps::multi {

TransferPlanner::TransferPlanner(const SegmentLocationMonitor& monitor,
                                 const sim::Topology& topo,
                                 std::vector<int> devices)
    : monitor_(monitor), topo_(topo), devices_(std::move(devices)) {
  uplink_busy_.resize(static_cast<std::size_t>(topo_.bus_count()), 0.0);
  downlink_busy_.resize(static_cast<std::size_t>(topo_.bus_count()), 0.0);
  socket_busy_.resize(static_cast<std::size_t>(topo_.cluster_nodes()),
                      {0.0, 0.0});
  engine_busy_.resize(devices_.size(), {0.0, 0.0});
  nic_send_busy_.resize(static_cast<std::size_t>(topo_.cluster_nodes()), 0.0);
  nic_recv_busy_.resize(static_cast<std::size_t>(topo_.cluster_nodes()), 0.0);
  loc_node_.resize(devices_.size() + 1, 0);
  node_locs_.resize(static_cast<std::size_t>(topo_.cluster_nodes()));
  for (std::size_t slot = 0; slot < devices_.size(); ++slot) {
    const int node = topo_.cluster_node_of(devices_[slot]);
    loc_node_[slot + 1] = node;
    node_locs_[static_cast<std::size_t>(node)].push_back(
        static_cast<int>(slot) + 1);
  }
}

void TransferPlanner::begin_task() {
  std::fill(uplink_busy_.begin(), uplink_busy_.end(), 0.0);
  std::fill(downlink_busy_.begin(), downlink_busy_.end(), 0.0);
  std::fill(socket_busy_.begin(), socket_busy_.end(),
            std::array<double, 2>{0.0, 0.0});
  std::fill(engine_busy_.begin(), engine_busy_.end(),
            std::array<double, 2>{0.0, 0.0});
  std::fill(nic_send_busy_.begin(), nic_send_busy_.end(), 0.0);
  std::fill(nic_recv_busy_.begin(), nic_recv_busy_.end(), 0.0);
  fresh_.clear();
  gateway_rotation_ = 0;
}

sim::Endpoint TransferPlanner::endpoint(int location) const {
  if (location == SegmentLocationMonitor::kHost) {
    return sim::Endpoint::host();
  }
  return sim::Endpoint::dev(devices_[static_cast<std::size_t>(location - 1)]);
}

double TransferPlanner::link_free(const sim::Topology::LinkUse& use) const {
  double free_s = 0.0;
  if (use.uplink_bus >= 0) {
    free_s = std::max(free_s,
                      uplink_busy_[static_cast<std::size_t>(use.uplink_bus)]);
  }
  if (use.downlink_bus >= 0) {
    free_s = std::max(
        free_s, downlink_busy_[static_cast<std::size_t>(use.downlink_bus)]);
  }
  if (use.socket_node >= 0) {
    free_s = std::max(
        free_s, socket_busy_[static_cast<std::size_t>(use.socket_node)]
                            [static_cast<std::size_t>(use.socket_dir)]);
  }
  if (use.nic_send_node >= 0) {
    free_s = std::max(
        free_s, nic_send_busy_[static_cast<std::size_t>(use.nic_send_node)]);
  }
  if (use.nic_recv_node >= 0) {
    free_s = std::max(
        free_s, nic_recv_busy_[static_cast<std::size_t>(use.nic_recv_node)]);
  }
  return free_s;
}

void TransferPlanner::reserve_links(const sim::Topology::LinkUse& use,
                                    double until) {
  // max() rather than plain assignment: per-leg reservations of one shared
  // resource may commit out of completion order across ops, and a busy-until
  // estimate must never move backwards.
  const auto hold = [until](double& busy) { busy = std::max(busy, until); };
  if (use.uplink_bus >= 0) {
    hold(uplink_busy_[static_cast<std::size_t>(use.uplink_bus)]);
  }
  if (use.downlink_bus >= 0) {
    hold(downlink_busy_[static_cast<std::size_t>(use.downlink_bus)]);
  }
  if (use.socket_node >= 0) {
    hold(socket_busy_[static_cast<std::size_t>(use.socket_node)]
                     [static_cast<std::size_t>(use.socket_dir)]);
  }
  if (use.nic_send_node >= 0) {
    hold(nic_send_busy_[static_cast<std::size_t>(use.nic_send_node)]);
  }
  if (use.nic_recv_node >= 0) {
    hold(nic_recv_busy_[static_cast<std::size_t>(use.nic_recv_node)]);
  }
}

std::pair<double, std::uint32_t>
TransferPlanner::source_state(const FreshState* fs, int loc,
                              const RowInterval& rows) const {
  if (fs == nullptr) {
    return {0.0, 0};
  }
  double ready = 0.0;
  std::uint32_t depth = 0;
  for (const Fresh& f : fs->per_loc[static_cast<std::size_t>(loc)]) {
    if (f.rows.begin < rows.end && rows.begin < f.rows.end) {
      ready = std::max(ready, f.ready_s);
      depth = std::max(depth, f.depth);
    }
  }
  return {ready, depth};
}

void TransferPlanner::collect_candidates(const FreshState* fs, int op_src,
                                         int target_location) {
  cand_buf_.clear();
  const int locations = static_cast<int>(devices_.size()) + 1;
  if (topo_.cluster_nodes() <= 1) {
    // Single node: every location is a candidate, exactly the PR 3 scan.
    for (int l = 0; l < locations; ++l) {
      if (l != target_location) {
        cand_buf_.push_back(l);
      }
    }
    return;
  }
  cand_buf_.push_back(SegmentLocationMonitor::kHost);
  cand_buf_.push_back(op_src);
  const int target_node = loc_node_[static_cast<std::size_t>(target_location)];
  for (int l : node_locs_[static_cast<std::size_t>(target_node)]) {
    cand_buf_.push_back(l);
  }
  if (fs != nullptr) {
    // One fresh-replica gateway per remote node, rotated across the ops of a
    // task: when a node holds several fresh replicas, successive ops are
    // offered different holders, spreading that node's NIC egress and bus
    // downlink load instead of funneling every forward through the first
    // replica. Enough for the earliest-finish rule to build inter-node
    // forwarding trees without scanning every device (coverage of the
    // specific rows is re-checked by route(); a gateway that misses them
    // simply loses the comparison). The rotation counter advances once per
    // op and resets per task, so planning stays deterministic.
    const std::uint64_t rot = gateway_rotation_++;
    std::size_t i = 0;
    while (i < fs->fresh_locs.size()) {
      const int node = loc_node_[static_cast<std::size_t>(fs->fresh_locs[i])];
      std::size_t j = i;
      while (j < fs->fresh_locs.size() &&
             loc_node_[static_cast<std::size_t>(fs->fresh_locs[j])] == node) {
        ++j;
      }
      if (node != target_node) {
        cand_buf_.push_back(
            fs->fresh_locs[i + static_cast<std::size_t>(rot % (j - i))]);
      }
      i = j;
    }
  }
  std::sort(cand_buf_.begin(), cand_buf_.end());
  cand_buf_.erase(std::unique(cand_buf_.begin(), cand_buf_.end()),
                  cand_buf_.end());
  cand_buf_.erase(
      std::remove(cand_buf_.begin(), cand_buf_.end(), target_location),
      cand_buf_.end());
}

void TransferPlanner::account(TransferStats& stats, const sim::Topology& topo,
                              sim::Endpoint src, sim::Endpoint dst,
                              bool host_staged, std::uint64_t bytes) {
  switch (topo.link_class(src, dst, host_staged)) {
  case sim::LinkClass::IntraDevice:
    break; // never leaves the device: no interconnect traffic
  case sim::LinkClass::PeerSameBus:
    stats.bytes_p2p_same_bus += bytes;
    break;
  case sim::LinkClass::PeerCrossBus:
    stats.bytes_p2p_cross_bus += bytes;
    break;
  case sim::LinkClass::HostToDevice:
    stats.bytes_h2d += bytes;
    break;
  case sim::LinkClass::DeviceToHost:
    stats.bytes_d2h += bytes;
    break;
  case sim::LinkClass::HostStaged:
    stats.bytes_host_staged += bytes;
    break;
  case sim::LinkClass::NetworkSend:
    stats.bytes_net_send += bytes;
    break;
  case sim::LinkClass::NetworkRecv:
    stats.bytes_net_recv += bytes;
    break;
  case sim::LinkClass::NetworkStaged:
    stats.bytes_net_staged += bytes;
    break;
  }
}

std::vector<SegmentLocationMonitor::CopyOp>
TransferPlanner::route(const Datum* datum, int target_location,
                       std::size_t row_bytes,
                       std::vector<SegmentLocationMonitor::CopyOp> ops,
                       TransferStats& stats) {
  stats.copies_planned += static_cast<std::uint32_t>(ops.size());
  const int target_slot = target_location - 1;
  const sim::Endpoint dst = endpoint(target_location);

  // Split ops at the boundaries of this task's freshly-routed replicas: the
  // monitor may hand us one wide op whose source rows become ready at
  // different times (some original, some still in flight). Each span routes
  // independently so it stalls only on its own source; the coalescing pass
  // below re-merges spans that end up equal. The boundary list is maintained
  // incrementally as replicas are committed (FreshState::cuts), so this pass
  // costs O(cuts), not a rescan of every location's replica list.
  const auto fresh_it = fresh_.find(datum->key());
  const FreshState* fs = fresh_it == fresh_.end() ? nullptr : &fresh_it->second;
  if (fs != nullptr && !fs->cuts.empty()) {
    const auto& cuts = fs->cuts;
    std::vector<SegmentLocationMonitor::CopyOp> split;
    split.reserve(ops.size());
    for (const auto& op : ops) {
      SegmentLocationMonitor::CopyOp piece = op;
      for (std::size_t cut : cuts) {
        if (cut > piece.rows.begin && cut < piece.rows.end) {
          SegmentLocationMonitor::CopyOp head = piece;
          head.rows.end = cut;
          split.push_back(head);
          piece.rows.begin = cut;
        }
      }
      split.push_back(piece);
    }
    ops = std::move(split);
  }

  // Source-readiness of each op's chosen source (0 for data already in
  // place): the coalescing pass below only merges ops that become available
  // together, so a merged transfer never stalls an early piece on a late one.
  std::vector<double> src_ready(ops.size(), 0.0);

  for (std::size_t oi = 0; oi < ops.size(); ++oi) {
    auto& op = ops[oi];
    if (op.src_location == target_location) {
      // Wrap/Clamp halo refilled from the target's own holdings: an
      // intra-device copy is already the cheapest possible path.
      continue;
    }
    const std::uint64_t bytes = op.rows.size() * row_bytes;

    double best_finish = std::numeric_limits<double>::infinity();
    double best_duration = 0.0;
    int best_loc = -1;
    int best_dev = std::numeric_limits<int>::max();
    int best_rank = 0;
    std::uint32_t best_depth = 0;
    double best_ready = 0.0;
    bool best_network = false;
    bool best_staged = false;
    bool best_bounce = false;
    sim::Topology::LinkUse best_use;

    // With pipelined crossings on, cross-bus in-node copies get a second
    // candidate path: the host-RAM bounce. The inter-socket link is the one
    // resource every cross-bus delivery of an in-node fan-out shares; the
    // bounce pays two PCIe hops plus software latency but occupies per-bus
    // links instead, so under socket saturation the earliest-finish rule
    // spills deliveries onto the idle host links. Off-cluster (and with
    // pipelining off) the candidate set is unchanged — single-node plans and
    // the PR 8 reservation model stay bit-identical.
    const bool balance_paths =
        topo_.cluster_nodes() > 1 && topo_.network_pipelining;

    collect_candidates(fs, op.src_location, target_location);
    stats.candidates_scanned += cand_buf_.size();
    for (int l : cand_buf_) {
      // The monitor's own pick is always a valid candidate; any other
      // location qualifies iff its up-to-date holdings cover the rows
      // (including replicas this task routed to it moments ago — the build
      // marks those copied in the monitor as it plans).
      if (l != op.src_location &&
          !monitor_.up_to_date(datum, l).covers(op.rows)) {
        continue;
      }
      const sim::Endpoint src = endpoint(l);
      const bool forced = !src.is_host() && !dst.is_host() &&
                          !topo_.peer_enabled(src.device, dst.device);
      const bool can_bounce =
          balance_paths && !forced && !src.is_host() && !dst.is_host() &&
          topo_.link_class(src, dst) == sim::LinkClass::PeerCrossBus;
      const auto [ready, depth] = source_state(fs, l, op.rows);
      for (int variant = 0; variant < (can_bounce ? 2 : 1); ++variant) {
      const bool bounce = variant == 1;
      const bool staged = forced || bounce;
      const sim::Topology::LinkUse use = topo_.link_use(src, dst, staged);
      // Mirror the simulator: setup latency pipelines with whatever is still
      // draining the shared link, so only the data phase queues behind it.
      const double setup =
          (staged ? topo_.latency_us(src, sim::Endpoint::host())
                  : topo_.latency_us(src, dst)) *
          1e-6;
      // Network crossings are costed leg-wise, mirroring the simulator's
      // pipelined occupancy model: each hop's resource need only be free by
      // that hop's offset into the transfer, so a chunk piece queues behind
      // its predecessor's matching hop, not its whole duration.
      sim::Topology::CopyLeg legs[3];
      const int nlegs = topo_.copy_legs(src, dst, bytes, staged, legs);
      double lf = 0.0;
      if (nlegs > 0) {
        for (int li = 0; li < nlegs; ++li) {
          lf = std::max(lf, link_free(legs[li].use) - legs[li].offset_s);
        }
      } else {
        lf = link_free(use);
      }
      double start = std::max({ready, lf - setup, 0.0});
      if (target_slot >= 0) {
        const auto& eng = engine_busy_[static_cast<std::size_t>(target_slot)];
        start = std::max(start, std::min(eng[0], eng[1]));
      }
      // The simulator's own duration model, network hop included — the
      // planner must see the same cross-node cost the event loop will
      // charge, or it would rank remote sources too cheap.
      const double duration = sim::copy_seconds(topo_, src, dst, bytes, staged);
      const double finish = start + duration;
      const sim::LinkClass cls = topo_.link_class(src, dst, staged);
      const int rank = sim::Topology::link_rank(cls);
      // Ties break on physical device index, not location index: two fresh
      // gateways finishing at the same sim time must pick the same source
      // under any slot->device placement, or plan-cache replay could
      // diverge from a rebuilt plan after a placement reorder.
      const int cand_dev = src.is_host() ? -1 : src.device;
      if (finish < best_finish ||
          (finish == best_finish &&
           (rank < best_rank || (rank == best_rank && cand_dev < best_dev)))) {
        best_finish = finish;
        best_duration = duration;
        best_loc = l;
        best_dev = cand_dev;
        best_rank = rank;
        best_depth = depth;
        best_ready = ready;
        best_network = sim::Topology::crosses_network(cls);
        best_staged = staged;
        best_bounce = bounce;
        best_use = use;
      }
      }
    }

    if (best_loc < 0) {
      continue; // defensive: keep the monitor's op untouched
    }
    src_ready[oi] = best_ready;
    if (best_loc != op.src_location) {
      ++stats.copies_rerouted;
      op.src_location = best_loc;
    }
    op.via_host = best_bounce;
    if (best_network) {
      ++stats.staged_routes_planned;
    }
    // Commit the choice to the load tracker so later ops (of this and every
    // following slot in the task) see this transfer occupying its links and
    // one of the destination's copy engines. Network crossings reserve per
    // leg — each hop's resource is released when that hop ends, matching
    // what the event loop will do.
    {
      sim::Topology::CopyLeg legs[3];
      const int nlegs = topo_.copy_legs(endpoint(best_loc), dst, bytes,
                                        best_staged, legs);
      if (nlegs > 0) {
        const double start = best_finish - best_duration;
        for (int li = 0; li < nlegs; ++li) {
          reserve_links(legs[li].use,
                        start + legs[li].offset_s + legs[li].duration_s);
        }
      } else {
        reserve_links(best_use, best_finish);
      }
    }
    if (target_slot >= 0) {
      auto& eng = engine_busy_[static_cast<std::size_t>(target_slot)];
      (eng[0] <= eng[1] ? eng[0] : eng[1]) = best_finish;
    }
    FreshState& fstate = fresh_[datum->key()];
    if (fstate.per_loc.empty()) {
      fstate.per_loc.resize(devices_.size() + 1);
    }
    fstate.per_loc[static_cast<std::size_t>(target_location)].push_back(
        Fresh{op.rows, best_finish, best_depth + 1});
    // Maintain the digests: the sorted location list feeds the remote
    // gateway scan, the sorted boundary list feeds the op-splitting pass.
    auto lit = std::lower_bound(fstate.fresh_locs.begin(),
                                fstate.fresh_locs.end(), target_location);
    if (lit == fstate.fresh_locs.end() || *lit != target_location) {
      fstate.fresh_locs.insert(lit, target_location);
    }
    for (const std::size_t cut : {op.rows.begin, op.rows.end}) {
      auto cit =
          std::lower_bound(fstate.cuts.begin(), fstate.cuts.end(), cut);
      if (cit == fstate.cuts.end() || *cit != cut) {
        fstate.cuts.insert(cit, cut);
      }
    }
    stats.max_fanout_depth = std::max(stats.max_fanout_depth, best_depth + 1);
  }

  // Re-canonicalize: routing may have moved ops between sources, so re-sort
  // and merge rows that are now adjacent with the same source (the monitor
  // guarantees the rows themselves are disjoint). Ops whose sources become
  // ready at different times stay separate: a merged transfer starts only
  // when its latest piece exists, which would stall the early pieces.
  std::vector<std::size_t> order(ops.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return ops[a].src_location != ops[b].src_location
               ? ops[a].src_location < ops[b].src_location
               : ops[a].rows.begin < ops[b].rows.begin;
  });
  std::vector<SegmentLocationMonitor::CopyOp> merged;
  merged.reserve(ops.size());
  double merged_ready = 0.0;
  for (std::size_t i : order) {
    const auto& op = ops[i];
    if (!merged.empty() && merged.back().src_location == op.src_location &&
        merged.back().via_host == op.via_host &&
        merged.back().rows.end == op.rows.begin &&
        std::abs(src_ready[i] - merged_ready) < 1e-9 &&
        (max_coalesce_bytes_ == 0 ||
         (merged.back().rows.size() + op.rows.size()) * row_bytes <=
             max_coalesce_bytes_)) {
      merged.back().rows.end = op.rows.end;
      ++stats.copies_coalesced;
    } else {
      merged.push_back(op);
      merged_ready = src_ready[i];
    }
  }
  return merged;
}

std::vector<sym::Copy>
TransferPlanner::symbolic_route(const sym::Family& family,
                                const sym::MonitorState& state,
                                std::vector<sym::Copy> ops) {
  // Replicas created by copies routed earlier in the same task are candidate
  // forwarding sources for later ones (the emergent fan-out shape of the
  // concrete planner's fresh-replica table). Readiness ordering is a timing
  // concern the symbolic model does not carry — only provable coverage.
  std::map<int, std::map<int, std::vector<sym::Interval>>> task_fresh;
  const auto holds = [&](int datum, int loc, const sym::Interval& rows) {
    auto it = state.find(datum);
    if (it != state.end()) {
      const auto& sets = it->second.fresh;
      if (loc < static_cast<int>(sets.size())) {
        for (const sym::Interval& f : sets[static_cast<std::size_t>(loc)]) {
          if (provably_contains(family, f, rows)) {
            return true;
          }
        }
      }
    }
    for (const sym::Interval& f : task_fresh[datum][loc]) {
      if (provably_contains(family, f, rows)) {
        return true;
      }
    }
    return false;
  };
  for (sym::Copy& op : ops) {
    if (!op.zero_fill && op.src_location == 0) {
      // Host staging is the costliest class under the contention model; the
      // greedy rule reroutes to any device replica that provably holds the
      // rows (deterministic first-match, mirroring the tie-break on
      // location index). Destination, rows and alignment stay untouched.
      for (int dev = 1; dev <= family.slots; ++dev) {
        if (dev != op.dst_location && holds(op.datum, dev, op.rows)) {
          op.src_location = dev;
          op.rerouted = true;
          break;
        }
      }
    }
    if (op.aligned && !op.zero_fill) {
      task_fresh[op.datum][op.dst_location].push_back(op.rows);
    }
  }
  return ops;
}

} // namespace maps::multi
