#include "multi/transfer_planner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace maps::multi {

TransferPlanner::TransferPlanner(const SegmentLocationMonitor& monitor,
                                 const sim::Topology& topo,
                                 std::vector<int> devices)
    : monitor_(monitor), topo_(topo), devices_(std::move(devices)) {
  uplink_busy_.resize(static_cast<std::size_t>(topo_.bus_count()), 0.0);
  downlink_busy_.resize(static_cast<std::size_t>(topo_.bus_count()), 0.0);
  socket_busy_.resize(static_cast<std::size_t>(topo_.cluster_nodes()),
                      {0.0, 0.0});
  engine_busy_.resize(devices_.size(), {0.0, 0.0});
}

void TransferPlanner::begin_task() {
  std::fill(uplink_busy_.begin(), uplink_busy_.end(), 0.0);
  std::fill(downlink_busy_.begin(), downlink_busy_.end(), 0.0);
  std::fill(socket_busy_.begin(), socket_busy_.end(),
            std::array<double, 2>{0.0, 0.0});
  std::fill(engine_busy_.begin(), engine_busy_.end(),
            std::array<double, 2>{0.0, 0.0});
  fresh_.clear();
}

sim::Endpoint TransferPlanner::endpoint(int location) const {
  if (location == SegmentLocationMonitor::kHost) {
    return sim::Endpoint::host();
  }
  return sim::Endpoint::dev(devices_[static_cast<std::size_t>(location - 1)]);
}

double TransferPlanner::link_free(const sim::Topology::LinkUse& use) const {
  double free_s = 0.0;
  if (use.uplink_bus >= 0) {
    free_s = std::max(free_s,
                      uplink_busy_[static_cast<std::size_t>(use.uplink_bus)]);
  }
  if (use.downlink_bus >= 0) {
    free_s = std::max(
        free_s, downlink_busy_[static_cast<std::size_t>(use.downlink_bus)]);
  }
  if (use.socket_node >= 0) {
    free_s = std::max(
        free_s, socket_busy_[static_cast<std::size_t>(use.socket_node)]
                            [static_cast<std::size_t>(use.socket_dir)]);
  }
  return free_s;
}

void TransferPlanner::reserve_links(const sim::Topology::LinkUse& use,
                                    double until) {
  if (use.uplink_bus >= 0) {
    uplink_busy_[static_cast<std::size_t>(use.uplink_bus)] = until;
  }
  if (use.downlink_bus >= 0) {
    downlink_busy_[static_cast<std::size_t>(use.downlink_bus)] = until;
  }
  if (use.socket_node >= 0) {
    socket_busy_[static_cast<std::size_t>(use.socket_node)]
                [static_cast<std::size_t>(use.socket_dir)] = until;
  }
}

std::pair<double, std::uint32_t>
TransferPlanner::source_state(const Datum* datum, int loc,
                              const RowInterval& rows) const {
  const auto it = fresh_.find(datum->key());
  if (it == fresh_.end()) {
    return {0.0, 0};
  }
  double ready = 0.0;
  std::uint32_t depth = 0;
  for (const Fresh& f : it->second[static_cast<std::size_t>(loc)]) {
    if (f.rows.begin < rows.end && rows.begin < f.rows.end) {
      ready = std::max(ready, f.ready_s);
      depth = std::max(depth, f.depth);
    }
  }
  return {ready, depth};
}

void TransferPlanner::account(TransferStats& stats, const sim::Topology& topo,
                              sim::Endpoint src, sim::Endpoint dst,
                              bool host_staged, std::uint64_t bytes) {
  switch (topo.link_class(src, dst, host_staged)) {
  case sim::LinkClass::IntraDevice:
    break; // never leaves the device: no interconnect traffic
  case sim::LinkClass::PeerSameBus:
    stats.bytes_p2p_same_bus += bytes;
    break;
  case sim::LinkClass::PeerCrossBus:
    stats.bytes_p2p_cross_bus += bytes;
    break;
  case sim::LinkClass::HostToDevice:
    stats.bytes_h2d += bytes;
    break;
  case sim::LinkClass::DeviceToHost:
    stats.bytes_d2h += bytes;
    break;
  case sim::LinkClass::HostStaged:
    stats.bytes_host_staged += bytes;
    break;
  }
}

std::vector<SegmentLocationMonitor::CopyOp>
TransferPlanner::route(const Datum* datum, int target_location,
                       std::size_t row_bytes,
                       std::vector<SegmentLocationMonitor::CopyOp> ops,
                       TransferStats& stats) {
  stats.copies_planned += static_cast<std::uint32_t>(ops.size());
  const int locations = static_cast<int>(devices_.size()) + 1;
  const int target_slot = target_location - 1;
  const sim::Endpoint dst = endpoint(target_location);

  // Split ops at the boundaries of this task's freshly-routed replicas: the
  // monitor may hand us one wide op whose source rows become ready at
  // different times (some original, some still in flight). Each span routes
  // independently so it stalls only on its own source; the coalescing pass
  // below re-merges spans that end up equal.
  const auto fresh_it = fresh_.find(datum->key());
  if (fresh_it != fresh_.end()) {
    std::vector<std::size_t> cuts;
    for (const auto& per_loc : fresh_it->second) {
      for (const Fresh& f : per_loc) {
        cuts.push_back(f.rows.begin);
        cuts.push_back(f.rows.end);
      }
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
    if (!cuts.empty()) {
      std::vector<SegmentLocationMonitor::CopyOp> split;
      split.reserve(ops.size());
      for (const auto& op : ops) {
        SegmentLocationMonitor::CopyOp piece = op;
        for (std::size_t cut : cuts) {
          if (cut > piece.rows.begin && cut < piece.rows.end) {
            SegmentLocationMonitor::CopyOp head = piece;
            head.rows.end = cut;
            split.push_back(head);
            piece.rows.begin = cut;
          }
        }
        split.push_back(piece);
      }
      ops = std::move(split);
    }
  }

  // Source-readiness of each op's chosen source (0 for data already in
  // place): the coalescing pass below only merges ops that become available
  // together, so a merged transfer never stalls an early piece on a late one.
  std::vector<double> src_ready(ops.size(), 0.0);

  for (std::size_t oi = 0; oi < ops.size(); ++oi) {
    auto& op = ops[oi];
    if (op.src_location == target_location) {
      // Wrap/Clamp halo refilled from the target's own holdings: an
      // intra-device copy is already the cheapest possible path.
      continue;
    }
    const std::uint64_t bytes = op.rows.size() * row_bytes;

    double best_finish = std::numeric_limits<double>::infinity();
    int best_loc = -1;
    int best_rank = 0;
    std::uint32_t best_depth = 0;
    double best_ready = 0.0;
    sim::Topology::LinkUse best_use;

    for (int l = 0; l < locations; ++l) {
      if (l == target_location) {
        continue;
      }
      // The monitor's own pick is always a valid candidate; any other
      // location qualifies iff its up-to-date holdings cover the rows
      // (including replicas this task routed to it moments ago — the build
      // marks those copied in the monitor as it plans).
      if (l != op.src_location &&
          !monitor_.up_to_date(datum, l).covers(op.rows)) {
        continue;
      }
      const sim::Endpoint src = endpoint(l);
      const bool staged = !src.is_host() && !dst.is_host() &&
                          !topo_.peer_enabled(src.device, dst.device);
      const sim::Topology::LinkUse use = topo_.link_use(src, dst, staged);
      const auto [ready, depth] = source_state(datum, l, op.rows);
      // Mirror the simulator: setup latency pipelines with whatever is still
      // draining the shared link, so only the data phase queues behind it.
      const double setup =
          (staged ? topo_.latency_us(src, sim::Endpoint::host())
                  : topo_.latency_us(src, dst)) *
          1e-6;
      double start =
          std::max({ready, link_free(use) - setup, 0.0});
      if (target_slot >= 0) {
        const auto& eng = engine_busy_[static_cast<std::size_t>(target_slot)];
        start = std::max(start, std::min(eng[0], eng[1]));
      }
      double duration;
      if (staged) {
        duration = topo_.transfer_seconds(src, sim::Endpoint::host(), bytes) +
                   topo_.transfer_seconds(sim::Endpoint::host(), dst, bytes) +
                   topo_.host_staging_software_us * 1e-6;
      } else {
        duration = topo_.transfer_seconds(src, dst, bytes);
      }
      const double finish = start + duration;
      const int rank =
          sim::Topology::link_rank(topo_.link_class(src, dst, staged));
      if (finish < best_finish ||
          (finish == best_finish &&
           (rank < best_rank || (rank == best_rank && l < best_loc)))) {
        best_finish = finish;
        best_loc = l;
        best_rank = rank;
        best_depth = depth;
        best_ready = ready;
        best_use = use;
      }
    }

    if (best_loc < 0) {
      continue; // defensive: keep the monitor's op untouched
    }
    src_ready[oi] = best_ready;
    if (best_loc != op.src_location) {
      ++stats.copies_rerouted;
      op.src_location = best_loc;
    }
    // Commit the choice to the load tracker so later ops (of this and every
    // following slot in the task) see this transfer occupying its links and
    // one of the destination's copy engines.
    reserve_links(best_use, best_finish);
    if (target_slot >= 0) {
      auto& eng = engine_busy_[static_cast<std::size_t>(target_slot)];
      (eng[0] <= eng[1] ? eng[0] : eng[1]) = best_finish;
    }
    auto& per_loc = fresh_[datum->key()];
    if (per_loc.empty()) {
      per_loc.resize(static_cast<std::size_t>(locations));
    }
    per_loc[static_cast<std::size_t>(target_location)].push_back(
        Fresh{op.rows, best_finish, best_depth + 1});
    stats.max_fanout_depth = std::max(stats.max_fanout_depth, best_depth + 1);
  }

  // Re-canonicalize: routing may have moved ops between sources, so re-sort
  // and merge rows that are now adjacent with the same source (the monitor
  // guarantees the rows themselves are disjoint). Ops whose sources become
  // ready at different times stay separate: a merged transfer starts only
  // when its latest piece exists, which would stall the early pieces.
  std::vector<std::size_t> order(ops.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return ops[a].src_location != ops[b].src_location
               ? ops[a].src_location < ops[b].src_location
               : ops[a].rows.begin < ops[b].rows.begin;
  });
  std::vector<SegmentLocationMonitor::CopyOp> merged;
  merged.reserve(ops.size());
  double merged_ready = 0.0;
  for (std::size_t i : order) {
    const auto& op = ops[i];
    if (!merged.empty() && merged.back().src_location == op.src_location &&
        merged.back().rows.end == op.rows.begin &&
        std::abs(src_ready[i] - merged_ready) < 1e-9 &&
        (max_coalesce_bytes_ == 0 ||
         (merged.back().rows.size() + op.rows.size()) * row_bytes <=
             max_coalesce_bytes_)) {
      merged.back().rows.end = op.rows.end;
      ++stats.copies_coalesced;
    } else {
      merged.push_back(op);
      merged_ready = src_ready[i];
    }
  }
  return merged;
}

std::vector<sym::Copy>
TransferPlanner::symbolic_route(const sym::Family& family,
                                const sym::MonitorState& state,
                                std::vector<sym::Copy> ops) {
  // Replicas created by copies routed earlier in the same task are candidate
  // forwarding sources for later ones (the emergent fan-out shape of the
  // concrete planner's fresh-replica table). Readiness ordering is a timing
  // concern the symbolic model does not carry — only provable coverage.
  std::map<int, std::map<int, std::vector<sym::Interval>>> task_fresh;
  const auto holds = [&](int datum, int loc, const sym::Interval& rows) {
    auto it = state.find(datum);
    if (it != state.end()) {
      const auto& sets = it->second.fresh;
      if (loc < static_cast<int>(sets.size())) {
        for (const sym::Interval& f : sets[static_cast<std::size_t>(loc)]) {
          if (provably_contains(family, f, rows)) {
            return true;
          }
        }
      }
    }
    for (const sym::Interval& f : task_fresh[datum][loc]) {
      if (provably_contains(family, f, rows)) {
        return true;
      }
    }
    return false;
  };
  for (sym::Copy& op : ops) {
    if (!op.zero_fill && op.src_location == 0) {
      // Host staging is the costliest class under the contention model; the
      // greedy rule reroutes to any device replica that provably holds the
      // rows (deterministic first-match, mirroring the tie-break on
      // location index). Destination, rows and alignment stay untouched.
      for (int dev = 1; dev <= family.slots; ++dev) {
        if (dev != op.dst_location && holds(op.datum, dev, op.rows)) {
          op.src_location = dev;
          op.rerouted = true;
          break;
        }
      }
    }
    if (op.aligned && !op.zero_fill) {
      task_fresh[op.datum][op.dst_location].push_back(op.rows);
    }
  }
  return ops;
}

} // namespace maps::multi
