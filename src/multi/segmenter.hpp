// Grid partitioning and per-pattern segment requirements (Algorithm 1,
// lines 2-5 of the paper).
//
// Task partitioning distributes thread-blocks evenly among the devices
// (§2.1): the virtual grid's block rows are split into contiguous spans. A
// Segmenter then derives, for every (pattern, device) pair, which datum rows
// the device must hold locally — the aligned band plus halos for Window
// patterns (with Wrap/Clamp/Zero boundary materialization at the global
// edges), the whole datum for replicated patterns, or a private full copy
// for duplicated reductive outputs.
#pragma once

#include <vector>

#include "maps/common.hpp"
#include "multi/interval_set.hpp"
#include "multi/pattern_spec.hpp"

namespace maps::multi {

/// How a task's virtual grid is split across device slots.
struct TaskPartition {
  std::size_t work_rows = 0; ///< Work-space height (partition dimension).
  std::size_t work_cols = 1; ///< Work-space width.
  maps::Dim3 block_dim;
  unsigned ilp_x = 1, ilp_y = 1;
  std::size_t blocks_x = 1, blocks_y = 1;
  /// Per slot: the block rows it executes.
  std::vector<RowInterval> block_rows;
  /// Per slot: the work (element) rows those blocks cover.
  std::vector<RowInterval> work_row_ranges;

  std::size_t rows_per_block_row() const {
    return static_cast<std::size_t>(block_dim.y) * ilp_y;
  }
};

/// Splits `work_rows` x `work_cols` work into thread-blocks and distributes
/// contiguous block-row spans over `slots` devices.
TaskPartition make_partition(std::size_t work_rows, std::size_t work_cols,
                             maps::Dim3 block_dim, unsigned ilp_x,
                             unsigned ilp_y, int slots);

/// One region of a device-local buffer and how to fill it: either a copy of
/// global datum rows or a zero fill (Boundary::Zero halos at global edges).
struct CopyRegion {
  RowInterval global;  ///< Source rows in the datum (unused for zero fill).
  long local_row = 0;  ///< Destination row in the local buffer.
  bool zero_fill = false;
};

/// A device's requirement on one datum for one task.
struct SegmentReq {
  bool active = false;       ///< Device participates in this task.
  long origin = 0;           ///< Virtual global row at local row 0.
  std::size_t local_rows = 0;
  RowInterval core;          ///< Aligned rows (owned rows for outputs).
  bool whole = false;        ///< Entire datum resident (replicate/duplicate).
  bool private_copy = false; ///< Duplicate that is NOT a valid global copy
                             ///< (reductive partials) — excluded from the
                             ///< location monitor's up-to-date tracking.
  /// Regions that must be valid before the kernel runs (inputs only).
  std::vector<CopyRegion> input_regions;
};

/// Segmenter: infers the memory segmentation of one pattern for one device
/// slot (Algorithm 1 line 4).
SegmentReq compute_requirement(const PatternSpec& spec,
                               const TaskPartition& partition, int slot);

/// Splits a requirement's input regions into the GLOBAL datum rows the
/// kernel reads at their global position (`aligned`: core band + interior
/// halos, whose local row equals global row - origin) and the rows it reads
/// through Wrap/Clamp halo slots at non-global positions (`halo`, refilled
/// by a boundary copy every task). Zero-fill regions carry no datum rows and
/// are skipped. Used by the access sanitizer to check each read rectangle
/// against the shadow version map.
void split_read_rows(const SegmentReq& req, std::vector<RowInterval>& aligned,
                     std::vector<RowInterval>& halo);

/// One contiguous run of a slot's virtual block rows, classified by whether
/// its reads stay inside the slot's aligned bands (interior) or reach into
/// halo rows (boundary). Used by the scheduler's compute–transfer overlap:
/// interior strips launch without waiting for halo traffic, boundary strips
/// are gated only on their own halo copies.
struct StripRange {
  RowInterval block_rows; ///< GLOBAL virtual block rows (like TaskPartition).
  bool boundary = false;
};

/// Interior/boundary decomposition of one slot's block-row span. A block row
/// is *interior* when, for every active PartitionAligned input, the rows it
/// reads (aligned band rows +/- the window radius) lie entirely inside the
/// slot's own core band — i.e. it never touches a halo row another device or
/// the host must supply. Returns at most three strips (leading boundary run,
/// interior, trailing boundary run) in ascending block-row order, or an
/// empty vector when splitting is pointless: fewer than two block rows, no
/// interior left (segment thinner than its halo), or no boundary at all.
/// Callers must only pass tasks whose PartitionAligned patterns use a 1/1
/// row scale (otherwise adjacent strips could share datum rows).
std::vector<StripRange> compute_strips(const std::vector<PatternSpec>& specs,
                                       const TaskPartition& partition, int slot,
                                       const std::vector<SegmentReq>& reqs);

/// Closed-form width of the boundary strips compute_strips produces, in
/// block rows: `lead` leading and `trail` trailing block rows of every slot
/// are boundary because a windowed input's reads leave the core band there;
/// everything between is interior. This is the per-block-row scan of
/// compute_strips solved symbolically (valid wherever no block row is
/// clamped by a ragged work height — the symbolic verifier proves the strip
/// theorems over whole partition families with it, and the concretization
/// tests pin it against the scan). `any` is false when no input is windowed
/// (compute_strips never splits then).
struct StripShape {
  std::size_t lead = 0;
  std::size_t trail = 0;
  bool any = false;
};
StripShape strip_halo_blocks(const std::vector<PatternSpec>& specs,
                             std::size_t rows_per_block_row);

/// Window size (in block rows) for the scheduler's out-of-core multi-pass
/// execution (DESIGN.md §5.16): the largest W such that two W-block-row
/// windows — the resident pass plus the prefetched next pass (double
/// buffering is what lets the refill of window p+1 overlap the kernel of
/// window p) — fit in `budget_bytes` alongside the task's window-invariant
/// residents (`persistent_bytes`: replicated inputs and whole-datum
/// reductive partials). Capped at `total_block_rows`; returns 0 when even a
/// single-block-row window does not fit, the condition the scheduler turns
/// into its budget-smaller-than-one-segment diagnostic. Windows are spans of
/// the partition's block rows, so every pass is a pure function of the
/// partition — the bit-identity contract of the differential tests.
std::size_t streaming_window_block_rows(std::size_t bytes_per_block_row,
                                        std::size_t persistent_bytes,
                                        std::size_t budget_bytes,
                                        std::size_t total_block_rows);

/// Chunk size (in block rows) for the parallel execution backend's
/// block-row fan-out (kernel_exec.hpp). Balances two pressures:
/// enough chunks that `parallelism` threads load-balance across uneven
/// chunk costs (~4 chunks per thread), but each chunk's working set
/// (`bytes_per_block_row` across all bound views) capped near the
/// per-core cache budget so concurrent chunks do not thrash each other's
/// cache lines. Returns at least 1; `block_rows` when parallelism <= 1.
unsigned exec_chunk_block_rows(unsigned block_rows,
                               std::size_t bytes_per_block_row,
                               unsigned parallelism);

} // namespace maps::multi
