#include "multi/datum.hpp"

namespace maps::multi {

Datum::Datum(std::string name, std::vector<std::size_t> dims,
             std::size_t elem_size)
    : name_(std::move(name)), dims_(std::move(dims)), elem_size_(elem_size) {
  if (dims_.empty()) {
    throw std::invalid_argument("Datum requires at least one dimension");
  }
  for (std::size_t d : dims_) {
    if (d == 0) {
      throw std::invalid_argument("Datum dimensions must be positive");
    }
  }
  row_bytes_ = elem_size_;
  for (std::size_t i = 1; i < dims_.size(); ++i) {
    row_bytes_ *= dims_[i];
  }
}

} // namespace maps::multi
