// Input memory access pattern containers (Table 1 of the paper).
//
// Each container classifies how threads read a datum and, through its
// spec(), tells the framework how to segment it: Window patterns carry a
// halo and partition with boundary exchanges; Block(2D) aligns rows with the
// output partition; Block(1D), Block(2D-Transposed) and Adjacency replicate;
// Traversal and Irregular cannot be partitioned and force single-device
// execution (the paper never partitions them either).
//
// Functionally, Window reads resolve through the device-local buffer whose
// halo rows were materialized by the inferred boundary exchanges, so kernels
// never see a device edge in the partitioned dimension; lateral (X)
// boundaries are resolved in-place per the Boundary mode.
#pragma once

#include <cstddef>

#include "multi/pattern_base.hpp"

namespace maps::multi {

namespace detail {

/// Shared implementation of windowed reads with halo-in-Y, boundary-in-X.
template <typename T> class WindowAccess {
public:
  static T load(const DeviceView& v, maps::Boundary boundary, long wx,
                long wy) {
    const long width = static_cast<long>(v.row_elems);
    switch (boundary) {
    case maps::Boundary::Wrap:
      wx = (wx % width + width) % width;
      break;
    case maps::Boundary::Clamp:
      wx = wx < 0 ? 0 : (wx >= width ? width - 1 : wx);
      break;
    case maps::Boundary::Zero:
      if (wx < 0 || wx >= width) {
        return T{};
      }
      break;
    case maps::Boundary::NoChecks:
      break;
    }
    const long ly = wy - v.origin; // halo rows make this in-range
    assert(ly >= 0 && static_cast<std::size_t>(ly) < v.rows);
    return *reinterpret_cast<const T*>(
        v.base + static_cast<std::size_t>(ly) * v.pitch +
        static_cast<std::size_t>(wx) * sizeof(T));
  }
};

} // namespace detail

// ---------------------------------------------------------------------------
// Window (2D)
// ---------------------------------------------------------------------------

/// Spatially-local 2D window with information overlap between threads
/// (stencils, Game of Life). Paper type: Window2D<T, RADIUS, BOUNDARY,
/// ILPX, ILPY> (Fig 2).
template <typename T, int Radius, maps::Boundary B = maps::CLAMP, int ILPX = 1,
          int ILPY = 1>
class Window2D : public detail::PatternBase {
public:
  static constexpr int kRadius = Radius;
  static constexpr maps::Boundary kBoundary = B;

  Window2D() = default;
  explicit Window2D(Matrix<T>& m) : PatternBase(&m) {}

  PatternSpec spec() const {
    PatternSpec s;
    s.kind = PatternKind::Window;
    s.is_input = true;
    s.datum = datum_;
    s.seg = Segmentation::PartitionAligned;
    s.radius_low = Radius;
    s.radius_high = Radius;
    s.boundary = B;
    s.ilp_x = ILPX;
    s.ilp_y = ILPY;
    return s;
  }

  struct SharedData {}; // stands in for the CUDA shared-memory tile
  void init() {}
  void init(SharedData&) {}

  /// Window value at relative offset (dx, dy) from an output iterator's
  /// work position.
  template <typename OutIter>
  T at(const OutIter& out, int dx, int dy) const {
    return detail::WindowAccess<T>::load(
        view(), B, static_cast<long>(out.work_x()) + dx,
        static_cast<long>(out.work_y()) + dy);
  }

  /// Iterator over the (2R+1)^2 neighborhood of one output element, row
  /// major from (-R,-R); used by MAPS_FOREACH_ALIGNED (Fig 2b).
  template <typename OutIter> class aligned_iterator {
  public:
    aligned_iterator(const Window2D* c, const OutIter& out, int i)
        : c_(c), out_(&out), i_(i) {}
    T operator*() const {
      constexpr int kSide = 2 * Radius + 1;
      return c_->at(*out_, i_ % kSide - Radius, i_ / kSide - Radius);
    }
    int dx() const { return i_ % (2 * Radius + 1) - Radius; }
    int dy() const { return i_ / (2 * Radius + 1) - Radius; }
    /// True at the window's center element.
    bool is_center() const { return dx() == 0 && dy() == 0; }
    aligned_iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator!=(const aligned_iterator& o) const { return i_ != o.i_; }

  private:
    const Window2D* c_;
    const OutIter* out_;
    int i_;
  };

  template <typename OutIter>
  aligned_iterator<OutIter> aligned_begin(const OutIter& out) const {
    return aligned_iterator<OutIter>(this, out, 0);
  }
  template <typename OutIter>
  aligned_iterator<OutIter> aligned_end(const OutIter& out) const {
    constexpr int kSide = 2 * Radius + 1;
    return aligned_iterator<OutIter>(this, out, kSide * kSide);
  }

  /// Input iterator aligned with the output's current element — the window
  /// center (Fig 4 line 14: `image.align(hist_iter)`).
  template <typename OutIter> class aligned_ref {
  public:
    aligned_ref(const Window2D* c, const OutIter& out) : c_(c), out_(&out) {}
    T operator*() const { return c_->at(*out_, 0, 0); }

  private:
    const Window2D* c_;
    const OutIter* out_;
  };
  template <typename OutIter>
  aligned_ref<OutIter> align(const OutIter& out) const {
    return aligned_ref<OutIter>(this, out);
  }
};

// ---------------------------------------------------------------------------
// Window (1D) and Window (ND)
// ---------------------------------------------------------------------------

/// 1D window over a vector (convolution, finite differences).
template <typename T, int Radius, maps::Boundary B = maps::CLAMP, int ILP = 1>
class Window1D : public detail::PatternBase {
public:
  static constexpr int kRadius = Radius;

  Window1D() = default;
  explicit Window1D(Vector<T>& v) : PatternBase(&v) {}

  PatternSpec spec() const {
    PatternSpec s;
    s.kind = PatternKind::Window;
    s.is_input = true;
    s.datum = datum_;
    s.seg = Segmentation::PartitionAligned;
    s.radius_low = Radius;
    s.radius_high = Radius;
    s.boundary = B;
    s.ilp_y = ILP; // 1-D work iterates along rows (dimension 0)
    return s;
  }

  struct SharedData {};
  void init() {}
  void init(SharedData&) {}

  /// Element at relative offset d from the output's work position. 1-D data
  /// is partitioned along its only dimension, so boundary handling in that
  /// dimension is served by halo rows; global edges were materialized by the
  /// segmenter per the Boundary mode.
  template <typename OutIter> T at(const OutIter& out, int d) const {
    const DeviceView& v = view();
    const long wy = static_cast<long>(out.work_y()) + d;
    const long ly = wy - v.origin;
    assert(ly >= 0 && static_cast<std::size_t>(ly) < v.rows);
    return *reinterpret_cast<const T*>(v.base +
                                       static_cast<std::size_t>(ly) * v.pitch);
  }

  template <typename OutIter> class aligned_iterator {
  public:
    aligned_iterator(const Window1D* c, const OutIter& out, int i)
        : c_(c), out_(&out), i_(i) {}
    T operator*() const { return c_->at(*out_, i_ - Radius); }
    int offset() const { return i_ - Radius; }
    aligned_iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator!=(const aligned_iterator& o) const { return i_ != o.i_; }

  private:
    const Window1D* c_;
    const OutIter* out_;
    int i_;
  };
  template <typename OutIter>
  aligned_iterator<OutIter> aligned_begin(const OutIter& out) const {
    return aligned_iterator<OutIter>(this, out, 0);
  }
  template <typename OutIter>
  aligned_iterator<OutIter> aligned_end(const OutIter& out) const {
    return aligned_iterator<OutIter>(this, out, 2 * Radius + 1);
  }
};

/// ND window over an NDArray, with the halo along dimension 0 (the partition
/// dimension) — the shape used by the deep-learning application's
/// Window (3D) multi-convolutions (§6.1).
template <typename T, std::size_t N, int Radius,
          maps::Boundary B = maps::CLAMP>
class WindowND : public detail::PatternBase {
public:
  WindowND() = default;
  explicit WindowND(NDArray<T, N>& a) : PatternBase(&a) {}

  PatternSpec spec() const {
    PatternSpec s;
    s.kind = PatternKind::Window;
    s.is_input = true;
    s.datum = datum_;
    s.seg = Segmentation::PartitionAligned;
    s.radius_low = Radius;
    s.radius_high = Radius;
    s.boundary = B;
    return s;
  }

  struct SharedData {};
  void init() {}
  void init(SharedData&) {}

  /// Element at (dim-0 slice `row` + d0, linear inner index `inner`).
  T at(long row, int d0, std::size_t inner) const {
    const DeviceView& v = view();
    const long ly = row + d0 - v.origin;
    assert(ly >= 0 && static_cast<std::size_t>(ly) < v.rows);
    assert(inner < v.row_elems);
    return *reinterpret_cast<const T*>(
        v.base + static_cast<std::size_t>(ly) * v.pitch + inner * sizeof(T));
  }
};

// ---------------------------------------------------------------------------
// Block patterns
// ---------------------------------------------------------------------------

/// Each thread requires the entire buffer (all-pairs N-body): replicated on
/// every device, iterated in chunks.
template <typename T> class Block1D : public detail::PatternBase {
public:
  Block1D() = default;
  explicit Block1D(Vector<T>& v) : PatternBase(&v) {}

  PatternSpec spec() const {
    PatternSpec s;
    s.kind = PatternKind::Block1D;
    s.is_input = true;
    s.datum = datum_;
    s.seg = Segmentation::Replicate;
    return s;
  }

  struct SharedData {};
  void init() {}
  void init(SharedData&) {}

  std::size_t size() const { return view().datum_rows * view().row_elems; }
  T operator[](std::size_t i) const {
    assert(i < size());
    return reinterpret_cast<const T*>(view().base)[i];
  }

  class iterator {
  public:
    iterator(const T* p, const T* e) : p_(p), e_(e) {}
    T operator*() const { return *p_; }
    iterator& operator++() {
      ++p_;
      return *this;
    }
    bool operator!=(IterEnd) const { return p_ != e_; }

  private:
    const T* p_;
    const T* e_;
  };
  iterator begin() const {
    const T* p = reinterpret_cast<const T*>(view().base);
    return iterator(p, p + size());
  }
  IterEnd end() const { return IterEnd{}; }
};

/// Each thread-block requires multiple rows of the buffer (matrix
/// multiplication, first operand): rows align with the output partition.
template <typename T> class Block2D : public detail::PatternBase {
public:
  Block2D() = default;
  explicit Block2D(Matrix<T>& m) : PatternBase(&m) {}
  /// Any datum can be consumed row-aligned (e.g. a Vector whose elements
  /// align 1:1 with the partitioned work of an unmodified routine).
  explicit Block2D(Datum& d) : PatternBase(&d) {}

  PatternSpec spec() const {
    PatternSpec s;
    s.kind = PatternKind::Block2D;
    s.is_input = true;
    s.datum = datum_;
    s.seg = Segmentation::PartitionAligned;
    return s;
  }

  struct SharedData {};
  void init() {}
  void init(SharedData&) {}

  std::size_t width() const { return view().row_elems; }

  /// Row of the datum aligned with the output iterator's work row.
  template <typename OutIter> class row_view {
  public:
    row_view(const T* row, std::size_t n) : row_(row), n_(n) {}
    T operator[](std::size_t i) const {
      assert(i < n_);
      return row_[i];
    }
    const T* begin() const { return row_; }
    const T* end() const { return row_ + n_; }
    std::size_t size() const { return n_; }

  private:
    const T* row_;
    std::size_t n_;
  };

  template <typename OutIter>
  row_view<OutIter> aligned_row(const OutIter& out) const {
    const DeviceView& v = view();
    const long ly = static_cast<long>(out.work_y()) - v.origin;
    assert(ly >= 0 && static_cast<std::size_t>(ly) < v.rows);
    return row_view<OutIter>(
        reinterpret_cast<const T*>(v.base +
                                   static_cast<std::size_t>(ly) * v.pitch),
        v.row_elems);
  }
};

/// Each thread-block requires multiple columns (matrix multiplication,
/// second operand): the full matrix is replicated on every device and
/// accessed by column.
template <typename T> class Block2DTransposed : public detail::PatternBase {
public:
  Block2DTransposed() = default;
  explicit Block2DTransposed(Matrix<T>& m) : PatternBase(&m) {}

  PatternSpec spec() const {
    PatternSpec s;
    s.kind = PatternKind::Block2DTransposed;
    s.is_input = true;
    s.datum = datum_;
    s.seg = Segmentation::Replicate;
    return s;
  }

  struct SharedData {};
  void init() {}
  void init(SharedData&) {}

  std::size_t height() const { return view().datum_rows; }
  std::size_t width() const { return view().row_elems; }

  /// Column of the datum aligned with the output iterator's work column.
  class col_view {
  public:
    col_view(const std::byte* base, std::size_t pitch, std::size_t rows)
        : base_(base), pitch_(pitch), rows_(rows) {}
    T operator[](std::size_t r) const {
      assert(r < rows_);
      return *reinterpret_cast<const T*>(base_ + r * pitch_);
    }
    std::size_t size() const { return rows_; }

  private:
    const std::byte* base_;
    std::size_t pitch_;
    std::size_t rows_;
  };

  template <typename OutIter> col_view aligned_col(const OutIter& out) const {
    const DeviceView& v = view();
    assert(out.work_x() < v.row_elems);
    return col_view(v.base + out.work_x() * sizeof(T), v.pitch, v.datum_rows);
  }
};

// ---------------------------------------------------------------------------
// Adjacency / Permutation / Traversal / Irregular
// ---------------------------------------------------------------------------

/// Sporadic access of a dense structure with a fixed pattern (the dense
/// vector of SpMV, cloth simulation): replicated on every device.
template <typename T> class Adjacency : public detail::PatternBase {
public:
  Adjacency() = default;
  explicit Adjacency(Vector<T>& v) : PatternBase(&v) {}

  PatternSpec spec() const {
    PatternSpec s;
    s.kind = PatternKind::Adjacency;
    s.is_input = true;
    s.datum = datum_;
    s.seg = Segmentation::Replicate;
    return s;
  }

  struct SharedData {};
  void init() {}
  void init(SharedData&) {}

  T operator[](std::size_t i) const {
    assert(i < view().datum_rows * view().row_elems);
    return reinterpret_cast<const T*>(view().base)[i];
  }
};

/// Each thread-block loads a contiguous chunk and distributes it to threads
/// in a permutation (FFT butterflies). The chunk is the block's aligned work
/// rows, so the pattern partitions cleanly.
template <typename T> class Permutation : public detail::PatternBase {
public:
  Permutation() = default;
  explicit Permutation(Vector<T>& v) : PatternBase(&v) {}

  PatternSpec spec() const {
    PatternSpec s;
    s.kind = PatternKind::Permutation;
    s.is_input = true;
    s.datum = datum_;
    s.seg = Segmentation::PartitionAligned;
    return s;
  }

  struct SharedData {};
  void init() {}
  void init(SharedData&) {}

  /// Size of the current block's contiguous chunk.
  std::size_t chunk_size() const {
    const auto& g = *tc().grid;
    const std::size_t span =
        static_cast<std::size_t>(g.block_dim.y) * g.ilp_y;
    const std::size_t begin = tc().block.y * span;
    return std::min(span, static_cast<std::size_t>(g.work_height) - begin);
  }

  /// Element j of the current block's chunk (j already permuted by caller).
  T chunk_at(std::size_t j) const {
    const auto& g = *tc().grid;
    const DeviceView& v = view();
    const std::size_t span =
        static_cast<std::size_t>(g.block_dim.y) * g.ilp_y;
    const std::size_t begin = tc().block.y * span;
    assert(j < chunk_size());
    const long ly = static_cast<long>(begin + j) - v.origin;
    assert(ly >= 0 && static_cast<std::size_t>(ly) < v.rows);
    return *reinterpret_cast<const T*>(v.base +
                                       static_cast<std::size_t>(ly) * v.pitch);
  }
};

/// Variable-size aligned segment of a CSR structure array (column indices
/// or values): device d holds exactly the edges of its work rows,
/// [row_ptr[w0], row_ptr[w1]) — the Adjacency pattern's "fixed pattern"
/// made explicit so the sparse structure partitions instead of replicating.
/// The host row_ptr array must stay valid while tasks are planned.
template <typename T> class CsrArray : public detail::PatternBase {
public:
  CsrArray() = default;
  CsrArray(Vector<T>& data, const int* host_row_ptr)
      : PatternBase(&data), row_ptr_(host_row_ptr) {}

  PatternSpec spec() const {
    PatternSpec s;
    s.kind = PatternKind::Adjacency;
    s.is_input = true;
    s.datum = datum_;
    s.seg = Segmentation::CustomAligned;
    const int* rp = row_ptr_;
    s.custom_rows = [rp](std::size_t w0, std::size_t w1) {
      return std::pair<std::size_t, std::size_t>(
          static_cast<std::size_t>(rp[w0]), static_cast<std::size_t>(rp[w1]));
    };
    return s;
  }

  struct SharedData {};
  void init() {}
  void init(SharedData&) {}

  /// Element at GLOBAL edge index `e` (the kernel keeps using the CSR's
  /// global indices; the facet maps them into the local slice).
  T operator[](std::size_t e) const {
    const DeviceView& v = view();
    const long local = static_cast<long>(e) - v.origin;
    assert(local >= 0 && static_cast<std::size_t>(local) < v.rows);
    return *reinterpret_cast<const T*>(v.base +
                                       static_cast<std::size_t>(local) *
                                           v.pitch);
  }

private:
  const int* row_ptr_ = nullptr;
};

/// Graph traversal (DFS/BFS) access. As in the paper, this pattern is not
/// partitioned: the task falls back to a single device.
template <typename T> class Traversal : public detail::PatternBase {
public:
  Traversal() = default;
  explicit Traversal(Vector<T>& v) : PatternBase(&v) {}

  PatternSpec spec() const {
    PatternSpec s;
    s.kind = PatternKind::Traversal;
    s.is_input = true;
    s.datum = datum_;
    s.seg = Segmentation::SingleDevice;
    return s;
  }

  struct SharedData {};
  void init() {}
  void init(SharedData&) {}

  T operator[](std::size_t i) const {
    assert(i < view().datum_rows * view().row_elems);
    return reinterpret_cast<const T*>(view().base)[i];
  }
};

/// Patterns that cannot be determined in advance (finite state machines).
/// Single-device fallback, like Traversal.
template <typename T> class IrregularInput : public detail::PatternBase {
public:
  IrregularInput() = default;
  explicit IrregularInput(Vector<T>& v) : PatternBase(&v) {}

  PatternSpec spec() const {
    PatternSpec s;
    s.kind = PatternKind::IrregularInput;
    s.is_input = true;
    s.datum = datum_;
    s.seg = Segmentation::SingleDevice;
    return s;
  }

  struct SharedData {};
  void init() {}
  void init(SharedData&) {}

  T operator[](std::size_t i) const {
    assert(i < view().datum_rows * view().row_elems);
    return reinterpret_cast<const T*>(view().base)[i];
  }
};

} // namespace maps::multi
