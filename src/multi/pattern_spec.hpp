// Type-erased description of a task argument's memory access pattern.
//
// Typed pattern templates (input_patterns.hpp / output_patterns.hpp) reduce
// to a PatternSpec; everything the host-level framework does — grid
// segmentation (segmenter.hpp), allocation sizing (memory_analyzer.hpp),
// transfer inference (location_monitor.hpp) and cost derivation
// (task_cost.hpp) — consumes this struct, keeping the scheduler free of
// template machinery. This mirrors the paper's architecture where Segmenter
// classes are "implemented for each access pattern" (§4, Algorithm 1).
#pragma once

#include <cstddef>
#include <functional>
#include <utility>

#include "maps/common.hpp"
#include "multi/datum.hpp"

namespace maps::multi {

/// The paper's input patterns (Table 1) and output patterns (§3.2).
enum class PatternKind {
  // Inputs
  Block1D,
  Block2D,
  Block2DTransposed,
  Window,
  Adjacency,
  Permutation,
  Traversal,
  IrregularInput,
  // Outputs
  StructuredInjective,
  UnstructuredInjective,
  ReductiveStatic,
  ReductiveDynamic,
  IrregularOutput,
};

const char* to_string(PatternKind kind);

/// How a pattern's datum is distributed across the devices (§2.1, §3.2).
enum class Segmentation {
  /// Datum rows map to work rows; each device holds its aligned band plus a
  /// halo of `radius` rows (Window, Block2D, StructuredInjective).
  PartitionAligned,
  /// Every device needs the entire datum (Block1D, Block2DT, Adjacency).
  Replicate,
  /// Every device holds a full-size private copy that must be aggregated on
  /// gather (Reductive Static, Unstructured Injective).
  DuplicateFull,
  /// Each device appends a runtime-determined number of rows; gather
  /// concatenates (Reductive Dynamic).
  DynamicAppend,
  /// Pattern cannot be partitioned; the task runs on a single device
  /// (Traversal, Irregular input — as in the paper, which never partitions
  /// these).
  SingleDevice,
  /// Datum rows derive from the work range through a pattern-supplied
  /// mapping (variable-size segments, e.g. the col/val arrays of a CSR
  /// sparse structure whose extents follow row_ptr).
  CustomAligned,
};

/// Host-side post-processing applied when gathering an output datum (§3.2).
enum class AggregationKind {
  None,        ///< Structured Injective: segments copy back disjointly.
  Sum,         ///< Reductive Static: element-wise combine of device copies.
  Append,      ///< Reductive Dynamic: concatenate device results.
  MaskedMerge, ///< Unstructured Injective: merge elements each device wrote.
};

/// The read-span formula of one input pattern: the datum rows a device's
/// sweep over work rows [w0, w1) reads, expressed as affine offsets of the
/// scaled work-row bounds. This is the *symbolic* side of the pattern's
/// concrete sweep — the same formula evaluates over concrete rows
/// (read_spans.hpp: compute_strips, build_strips, the sanitizer's read
/// rectangles) and over symbolic segment boundaries (symbolic_verifier.hpp),
/// so the dynamic checks and the static proofs can never drift apart.
struct ReadSpanFormula {
  bool reads = false;       ///< Pattern reads the datum at all (inputs only).
  bool whole_datum = false; ///< Reads every row regardless of the partition
                            ///< (Replicate / DuplicateFull / SingleDevice).
  /// Rows read below scale_rows_begin(w0) / above scale_rows_end(w1); rows
  /// outside [0, datum_rows) resolve through `boundary`.
  long lo_offset = 0, hi_offset = 0;
  maps::Boundary boundary = maps::Boundary::Clamp;
};

struct PatternSpec {
  PatternKind kind = PatternKind::Block1D;
  bool is_input = true;
  Datum* datum = nullptr;

  Segmentation seg = Segmentation::Replicate;
  AggregationKind agg = AggregationKind::None;

  /// Halo rows below/above the aligned band (Window patterns).
  int radius_low = 0, radius_high = 0;
  maps::Boundary boundary = maps::Boundary::Clamp;

  /// Elements processed per thread (ILP template parameters, §4.5.1).
  int ilp_x = 1, ilp_y = 1;

  /// Datum rows per work row as a rational (num/den). 1/1 for element-wise
  /// kernels; e.g. 2/1 for the input of a stride-2 pooling routine.
  std::size_t row_scale_num = 1, row_scale_den = 1;

  /// Element-wise combiner for AggregationKind::Sum:
  /// acc[i] op= part[i] for `elems` elements.
  std::function<void(void* acc, const void* part, std::size_t elems)> agg_op;
  /// Whether agg_op is exact under reassociation (integral element types).
  /// The parallel execution backend merges such Sum outputs with plain
  /// per-chunk partials under any chunking; inexact (floating-point) sums
  /// instead use agg_op_comp below (kernel_exec.hpp).
  bool agg_exact = false;

  /// Compensated (Neumaier) merge step for inexact Sum element types:
  /// acc[i] += part[i] with the rounding error of each addition banked into
  /// carry[i]; the backend finalizes by folding the carry back via agg_op.
  /// Merged in ascending chunk order over parallelism-independent chunk
  /// boundaries, this makes float sums bit-identical across thread counts
  /// (and bounds drift against the unchunked sweep). Null when agg_exact
  /// holds or the type has no compensated form.
  std::function<void(void* acc, const void* part, void* carry,
                     std::size_t elems)>
      agg_op_comp;

  /// For Segmentation::CustomAligned: maps a work-row range to the datum
  /// rows the device must hold.
  std::function<std::pair<std::size_t, std::size_t>(std::size_t, std::size_t)>
      custom_rows;

  /// Datum rows corresponding to work rows [w0, w1), before halo.
  std::size_t scale_rows_begin(std::size_t w0) const {
    return w0 * row_scale_num / row_scale_den;
  }
  std::size_t scale_rows_end(std::size_t w1) const {
    return (w1 * row_scale_num + row_scale_den - 1) / row_scale_den;
  }

  /// The pattern's read-span formula (see ReadSpanFormula). Derived from the
  /// declaration only — kind, segmentation, radii, boundary — never from a
  /// concrete partition, which is what lets the symbolic verifier evaluate
  /// it over whole partition families at once.
  ReadSpanFormula read_span_formula() const {
    ReadSpanFormula f;
    f.boundary = boundary;
    if (!is_input) {
      return f; // outputs read nothing through their pattern
    }
    f.reads = true;
    switch (seg) {
    case Segmentation::PartitionAligned:
    case Segmentation::CustomAligned:
      f.lo_offset = -static_cast<long>(radius_low);
      f.hi_offset = static_cast<long>(radius_high);
      break;
    case Segmentation::Replicate:
    case Segmentation::DuplicateFull:
    case Segmentation::SingleDevice:
      f.whole_datum = true;
      break;
    case Segmentation::DynamicAppend:
      f.reads = false; // append outputs only; no input uses this
      break;
    }
    return f;
  }
};

/// Geometry of one device's slice of a datum, handed to device-level
/// container facets and unmodified routines.
struct DeviceView {
  std::byte* base = nullptr; ///< Local row 0 (nullptr in TimingOnly mode).
  std::size_t pitch = 0;     ///< Bytes per row.
  /// Virtual global row stored at local row 0. Negative when a Wrap halo
  /// precedes row 0 (virtual row -1 holds global row H-1).
  long origin = 0;
  std::size_t rows = 0;       ///< Local rows (core + halos).
  std::size_t row_elems = 0;  ///< Elements per row.
  std::size_t datum_rows = 0; ///< Global row count of the datum.
  /// This device's owned (core) rows in global coordinates.
  std::size_t core_begin = 0, core_end = 0;
};

} // namespace maps::multi
