#include "multi/interval_set.hpp"

#include <algorithm>

namespace maps::multi {

RowInterval intersect(const RowInterval& a, const RowInterval& b) {
  RowInterval r{std::max(a.begin, b.begin), std::min(a.end, b.end)};
  if (r.empty()) {
    return RowInterval{0, 0};
  }
  return r;
}

IntervalSet::IntervalSet(std::vector<RowInterval> intervals)
    : intervals_(std::move(intervals)) {
  normalize();
}

void IntervalSet::normalize() {
  std::erase_if(intervals_, [](const RowInterval& iv) { return iv.empty(); });
  std::sort(intervals_.begin(), intervals_.end(),
            [](const RowInterval& a, const RowInterval& b) {
              return a.begin < b.begin;
            });
  std::vector<RowInterval> merged;
  for (const auto& iv : intervals_) {
    if (!merged.empty() && iv.begin <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, iv.end);
    } else {
      merged.push_back(iv);
    }
  }
  intervals_ = std::move(merged);
}

void IntervalSet::add(RowInterval iv) {
  if (iv.empty()) {
    return;
  }
  intervals_.push_back(iv);
  normalize();
}

void IntervalSet::remove(RowInterval iv) {
  if (iv.empty()) {
    return;
  }
  std::vector<RowInterval> result;
  for (const auto& cur : intervals_) {
    if (cur.end <= iv.begin || cur.begin >= iv.end) {
      result.push_back(cur);
      continue;
    }
    if (cur.begin < iv.begin) {
      result.push_back(RowInterval{cur.begin, iv.begin});
    }
    if (cur.end > iv.end) {
      result.push_back(RowInterval{iv.end, cur.end});
    }
  }
  intervals_ = std::move(result);
}

bool IntervalSet::covers(const RowInterval& iv) const {
  if (iv.empty()) {
    return true;
  }
  std::size_t pos = iv.begin;
  for (const auto& cur : intervals_) {
    if (cur.end <= pos) {
      continue;
    }
    if (cur.begin > pos) {
      return false;
    }
    pos = cur.end;
    if (pos >= iv.end) {
      return true;
    }
  }
  return false;
}

std::size_t IntervalSet::total_rows() const {
  std::size_t n = 0;
  for (const auto& iv : intervals_) {
    n += iv.size();
  }
  return n;
}

std::vector<RowInterval>
IntervalSet::intersection_with(const RowInterval& iv) const {
  std::vector<RowInterval> result;
  for (const auto& cur : intervals_) {
    RowInterval x = intersect(cur, iv);
    if (!x.empty()) {
      result.push_back(x);
    }
  }
  return result;
}

std::vector<RowInterval>
IntervalSet::missing_from(const RowInterval& iv) const {
  std::vector<RowInterval> result;
  std::size_t pos = iv.begin;
  for (const auto& cur : intervals_) {
    if (cur.end <= pos || cur.begin >= iv.end) {
      continue;
    }
    if (cur.begin > pos) {
      result.push_back(RowInterval{pos, cur.begin});
    }
    pos = std::max(pos, cur.end);
  }
  if (pos < iv.end) {
    result.push_back(RowInterval{pos, iv.end});
  }
  return result;
}

} // namespace maps::multi
