#include "multi/interval_set.hpp"

#include <algorithm>

namespace maps::multi {

RowInterval intersect(const RowInterval& a, const RowInterval& b) {
  RowInterval r{std::max(a.begin, b.begin), std::min(a.end, b.end)};
  if (r.empty()) {
    return RowInterval{0, 0};
  }
  return r;
}

IntervalSet::IntervalSet(std::vector<RowInterval> intervals)
    : intervals_(std::move(intervals)) {
  normalize();
}

void IntervalSet::normalize() {
  std::erase_if(intervals_, [](const RowInterval& iv) { return iv.empty(); });
  std::sort(intervals_.begin(), intervals_.end(),
            [](const RowInterval& a, const RowInterval& b) {
              return a.begin < b.begin;
            });
  std::vector<RowInterval> merged;
  for (const auto& iv : intervals_) {
    if (!merged.empty() && iv.begin <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, iv.end);
    } else {
      merged.push_back(iv);
    }
  }
  intervals_ = std::move(merged);
}

void IntervalSet::add(RowInterval iv) {
  if (iv.empty()) {
    return;
  }
  // Entries are sorted and disjoint, so begins and ends are both increasing:
  // binary-search the affected window and splice instead of re-sorting.
  auto first = std::lower_bound(
      intervals_.begin(), intervals_.end(), iv.begin,
      [](const RowInterval& e, std::size_t v) { return e.end < v; });
  auto last = first;
  while (last != intervals_.end() && last->begin <= iv.end) {
    iv.begin = std::min(iv.begin, last->begin);
    iv.end = std::max(iv.end, last->end);
    ++last;
  }
  auto pos = intervals_.erase(first, last);
  intervals_.insert(pos, iv);
}

void IntervalSet::remove(RowInterval iv) {
  if (iv.empty()) {
    return;
  }
  auto first = std::lower_bound(
      intervals_.begin(), intervals_.end(), iv.begin,
      [](const RowInterval& e, std::size_t v) { return e.end <= v; });
  auto last = first;
  RowInterval left{0, 0}, right{0, 0};
  while (last != intervals_.end() && last->begin < iv.end) {
    if (last->begin < iv.begin) {
      left = RowInterval{last->begin, iv.begin};
    }
    if (last->end > iv.end) {
      right = RowInterval{iv.end, last->end};
    }
    ++last;
  }
  auto pos = intervals_.erase(first, last);
  if (!right.empty()) {
    pos = intervals_.insert(pos, right);
  }
  if (!left.empty()) {
    intervals_.insert(pos, left);
  }
}

bool IntervalSet::covers(const RowInterval& iv) const {
  if (iv.empty()) {
    return true;
  }
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), iv.begin,
      [](const RowInterval& e, std::size_t v) { return e.end <= v; });
  return it != intervals_.end() && it->begin <= iv.begin && it->end >= iv.end;
}

std::size_t IntervalSet::total_rows() const {
  std::size_t n = 0;
  for (const auto& iv : intervals_) {
    n += iv.size();
  }
  return n;
}

std::vector<RowInterval>
IntervalSet::intersection_with(const RowInterval& iv) const {
  std::vector<RowInterval> result;
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), iv.begin,
      [](const RowInterval& e, std::size_t v) { return e.end <= v; });
  for (; it != intervals_.end() && it->begin < iv.end; ++it) {
    RowInterval x = intersect(*it, iv);
    if (!x.empty()) {
      result.push_back(x);
    }
  }
  return result;
}

std::vector<RowInterval>
IntervalSet::missing_from(const RowInterval& iv) const {
  std::vector<RowInterval> result;
  std::size_t pos = iv.begin;
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), iv.begin,
      [](const RowInterval& e, std::size_t v) { return e.end <= v; });
  for (; it != intervals_.end() && it->begin < iv.end; ++it) {
    if (it->begin > pos) {
      result.push_back(RowInterval{pos, it->begin});
    }
    pos = std::max(pos, it->end);
  }
  if (pos < iv.end) {
    result.push_back(RowInterval{pos, iv.end});
  }
  return result;
}

// --- IntervalEventMap --------------------------------------------------------

void IntervalEventMap::coalesce_around(std::size_t lo, std::size_t hi) {
  std::size_t i = std::max<std::size_t>(lo, 1);
  while (i < entries_.size() && i <= hi) {
    if (entries_[i - 1].iv.end == entries_[i].iv.begin &&
        entries_[i - 1].event == entries_[i].event) {
      entries_[i - 1].iv.end = entries_[i].iv.end;
      entries_.erase(entries_.begin() + static_cast<long>(i));
      --hi;
    } else {
      ++i;
    }
  }
}

void IntervalEventMap::update(const RowInterval& rows, int event) {
  if (rows.empty()) {
    return;
  }
  auto first = std::lower_bound(
      entries_.begin(), entries_.end(), rows.begin,
      [](const Entry& e, std::size_t v) { return e.iv.end <= v; });
  // Fast path: the range IS an existing entry (the steady-state repeat) —
  // swap the event in place, no splice.
  if (first != entries_.end() && first->iv == rows &&
      (std::next(first) == entries_.end() ||
       std::next(first)->iv.begin >= rows.end)) {
    first->event = event;
    const std::size_t at = static_cast<std::size_t>(first - entries_.begin());
    coalesce_around(at == 0 ? 0 : at - 1, at + 1);
    return;
  }
  auto last = first;
  while (last != entries_.end() && last->iv.begin < rows.end) {
    ++last;
  }
  Entry repl[3];
  std::size_t n = 0;
  if (first != last && first->iv.begin < rows.begin) {
    repl[n++] = Entry{RowInterval{first->iv.begin, rows.begin}, first->event};
  }
  repl[n++] = Entry{rows, event};
  if (first != last) {
    const Entry& back = *std::prev(last);
    if (back.iv.end > rows.end) {
      repl[n++] = Entry{RowInterval{rows.end, back.iv.end}, back.event};
    }
  }
  auto pos = entries_.erase(first, last);
  const std::size_t at = static_cast<std::size_t>(pos - entries_.begin());
  entries_.insert(pos, repl, repl + n);
  coalesce_around(at == 0 ? 0 : at - 1, at + n);
}

void IntervalEventMap::collect(const RowInterval& rows, std::vector<int>& out,
                               std::size_t dedup_from) const {
  if (rows.empty()) {
    return;
  }
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), rows.begin,
      [](const Entry& e, std::size_t v) { return e.iv.end <= v; });
  for (; it != entries_.end() && it->iv.begin < rows.end; ++it) {
    if (std::find(out.begin() + static_cast<long>(dedup_from), out.end(),
                  it->event) == out.end()) {
      out.push_back(it->event);
    }
  }
}

// --- AccessIntervalMap -------------------------------------------------------

void AccessIntervalMap::coalesce_writers_around(std::size_t lo,
                                                std::size_t hi) {
  std::size_t i = std::max<std::size_t>(lo, 1);
  while (i < writers_.size() && i <= hi) {
    if (writers_[i - 1].iv.end == writers_[i].iv.begin &&
        writers_[i - 1].event == writers_[i].event) {
      writers_[i - 1].iv.end = writers_[i].iv.end;
      writers_.erase(writers_.begin() + static_cast<long>(i));
      --hi;
    } else {
      ++i;
    }
  }
}

void AccessIntervalMap::coalesce_readers_around(std::size_t lo,
                                                std::size_t hi) {
  std::size_t i = std::max<std::size_t>(lo, 1);
  while (i < readers_.size() && i <= hi) {
    if (readers_[i - 1].iv.end == readers_[i].iv.begin &&
        readers_[i - 1].events == readers_[i].events) {
      readers_[i - 1].iv.end = readers_[i].iv.end;
      readers_.erase(readers_.begin() + static_cast<long>(i));
      --hi;
    } else {
      ++i;
    }
  }
}

void AccessIntervalMap::add_reader(const RowInterval& rows, int event) {
  if (rows.empty()) {
    return;
  }
  auto first = std::lower_bound(
      readers_.begin(), readers_.end(), rows.begin,
      [](const Readers& e, std::size_t v) { return e.iv.end <= v; });
  const std::size_t at = static_cast<std::size_t>(first - readers_.begin());
  // Fast path: nothing overlaps — a plain insert of a fresh range.
  if (first == readers_.end() || first->iv.begin >= rows.end) {
    Readers r;
    r.iv = rows;
    r.events.push_back(event);
    readers_.insert(first, std::move(r));
    coalesce_readers_around(at == 0 ? 0 : at - 1, at + 1);
    return;
  }
  // Fast path: the range IS an existing entry (the steady-state repeat) —
  // append or no-op in place, no splice.
  if (first->iv == rows && (std::next(first) == readers_.end() ||
                            std::next(first)->iv.begin >= rows.end)) {
    if (std::find(first->events.begin(), first->events.end(), event) ==
        first->events.end()) {
      first->events.push_back(event);
      coalesce_readers_around(at == 0 ? 0 : at - 1, at + 1);
    }
    return;
  }
  // General splice. The staging run is built in reused scratch storage, and
  // event lists are moved (not copied) whenever an entry is consumed whole.
  repl_scratch_.clear();
  std::vector<Readers>& repl = repl_scratch_;
  auto last = first;
  std::size_t pos = rows.begin;
  while (last != readers_.end() && last->iv.begin < rows.end) {
    if (pos < last->iv.begin) {
      repl.push_back(Readers{RowInterval{pos, last->iv.begin}, {event}});
    }
    const RowInterval ov = intersect(last->iv, rows);
    if (last->iv.begin < ov.begin) {
      repl.push_back(
          Readers{RowInterval{last->iv.begin, ov.begin}, last->events});
    }
    const bool split_right = last->iv.end > ov.end;
    Readers mid;
    mid.iv = ov;
    if (split_right) {
      mid.events = last->events; // the tail below still needs the originals
    } else {
      mid.events = std::move(last->events);
    }
    if (std::find(mid.events.begin(), mid.events.end(), event) ==
        mid.events.end()) {
      mid.events.push_back(event);
    }
    repl.push_back(std::move(mid));
    if (split_right) {
      repl.push_back(
          Readers{RowInterval{ov.end, last->iv.end}, std::move(last->events)});
    }
    pos = ov.end;
    ++last;
  }
  if (pos < rows.end) {
    repl.push_back(Readers{RowInterval{pos, rows.end}, {event}});
  }
  auto at_it = readers_.erase(first, last);
  readers_.insert(at_it, std::make_move_iterator(repl.begin()),
                  std::make_move_iterator(repl.end()));
  coalesce_readers_around(at == 0 ? 0 : at - 1, at + repl.size());
}

void AccessIntervalMap::write(const RowInterval& rows, int event) {
  if (rows.empty()) {
    return;
  }
  // Supersede overlapped writers with this one.
  {
    auto first = std::lower_bound(
        writers_.begin(), writers_.end(), rows.begin,
        [](const Writer& e, std::size_t v) { return e.iv.end <= v; });
    // Fast path: exact-entry repeat — swap the event in place, no splice.
    if (first != writers_.end() && first->iv == rows &&
        (std::next(first) == writers_.end() ||
         std::next(first)->iv.begin >= rows.end)) {
      first->event = event;
      const std::size_t at = static_cast<std::size_t>(first - writers_.begin());
      coalesce_writers_around(at == 0 ? 0 : at - 1, at + 1);
    } else {
    auto last = first;
    while (last != writers_.end() && last->iv.begin < rows.end) {
      ++last;
    }
    Writer repl[3];
    std::size_t n = 0;
    if (first != last && first->iv.begin < rows.begin) {
      repl[n++] =
          Writer{RowInterval{first->iv.begin, rows.begin}, first->event};
    }
    repl[n++] = Writer{rows, event};
    if (first != last) {
      const Writer& back = *std::prev(last);
      if (back.iv.end > rows.end) {
        repl[n++] = Writer{RowInterval{rows.end, back.iv.end}, back.event};
      }
    }
    auto pos = writers_.erase(first, last);
    const std::size_t at = static_cast<std::size_t>(pos - writers_.begin());
    writers_.insert(pos, repl, repl + n);
    coalesce_writers_around(at == 0 ? 0 : at - 1, at + n);
    }
  }
  // Compact readers the write covers: the write waited on them, so future
  // writers of these rows are ordered transitively through `event`.
  {
    auto first = std::lower_bound(
        readers_.begin(), readers_.end(), rows.begin,
        [](const Readers& e, std::size_t v) { return e.iv.end <= v; });
    auto last = first;
    Readers left, right;
    while (last != readers_.end() && last->iv.begin < rows.end) {
      if (last->iv.begin < rows.begin) {
        left = Readers{RowInterval{last->iv.begin, rows.begin}, last->events};
      }
      if (last->iv.end > rows.end) {
        right = Readers{RowInterval{rows.end, last->iv.end}, last->events};
      }
      ++last;
    }
    auto pos = readers_.erase(first, last);
    if (!right.iv.empty()) {
      pos = readers_.insert(pos, std::move(right));
    }
    if (!left.iv.empty()) {
      readers_.insert(pos, std::move(left));
    }
  }
}

void AccessIntervalMap::collect(const RowInterval& rows, std::vector<int>& out,
                                std::size_t dedup_from) const {
  if (rows.empty()) {
    return;
  }
  auto w = std::lower_bound(
      writers_.begin(), writers_.end(), rows.begin,
      [](const Writer& e, std::size_t v) { return e.iv.end <= v; });
  for (; w != writers_.end() && w->iv.begin < rows.end; ++w) {
    if (std::find(out.begin() + static_cast<long>(dedup_from), out.end(),
                  w->event) == out.end()) {
      out.push_back(w->event);
    }
  }
  auto r = std::lower_bound(
      readers_.begin(), readers_.end(), rows.begin,
      [](const Readers& e, std::size_t v) { return e.iv.end <= v; });
  for (; r != readers_.end() && r->iv.begin < rows.end; ++r) {
    for (int ev : r->events) {
      if (std::find(out.begin() + static_cast<long>(dedup_from), out.end(),
                    ev) == out.end()) {
        out.push_back(ev);
      }
    }
  }
}

} // namespace maps::multi
