#include "multi/task_cost.hpp"

#include <algorithm>
#include <cmath>

namespace maps::multi {

sim::LaunchStats task_launch_stats(std::span<const PatternSpec> specs,
                                   const TaskPartition& partition, int slot,
                                   const CostHints& hints, const char* label) {
  sim::LaunchStats st;
  st.label = label;

  const RowInterval work =
      partition.work_row_ranges[static_cast<std::size_t>(slot)];
  const RowInterval brows =
      partition.block_rows[static_cast<std::size_t>(slot)];
  const std::uint64_t elems =
      static_cast<std::uint64_t>(work.size()) * partition.work_cols;
  if (elems == 0) {
    st.blocks = 0;
    return st;
  }

  st.blocks = static_cast<std::uint64_t>(brows.size()) * partition.blocks_x;
  st.threads_per_block =
      static_cast<std::uint64_t>(partition.block_dim.x) * partition.block_dim.y;
  const std::uint64_t threads = st.blocks * st.threads_per_block;

  st.flops = static_cast<std::uint64_t>(
      static_cast<double>(elems) * hints.flops_per_elem);
  st.instr_overhead = static_cast<std::uint64_t>(
      static_cast<double>(threads) * hints.instr_per_thread);
  st.flop_efficiency = hints.flop_efficiency;

  for (const PatternSpec& s : specs) {
    const std::size_t esize = s.datum->elem_size();
    const int ilp = std::max(1, s.ilp_x * s.ilp_y);
    // ILP lets the compiler pipeline shared-memory accesses across the
    // unrolled element loop (§4.5.1); saturates quickly.
    const double pipeline = std::min(ilp, 4);

    if (s.is_input) {
      switch (s.kind) {
      case PatternKind::Window: {
        // Shared-staged tile: each block loads (span + 2r) rows/cols of its
        // span; neighbors are then read from shared memory.
        const double span_x =
            static_cast<double>(partition.block_dim.x) * partition.ilp_x;
        const double span_y =
            static_cast<double>(partition.block_dim.y) * partition.ilp_y;
        const double r = static_cast<double>(
            std::max(s.radius_low, s.radius_high));
        const bool one_d = s.datum->dims().size() == 1;
        const double tile_factor =
            one_d ? (span_y + 2 * r) / span_y
                  : ((span_x + 2 * r) * (span_y + 2 * r)) / (span_x * span_y);
        const double window_elems =
            one_d ? (2 * r + 1) : (2 * r + 1) * (2 * r + 1);
        st.global_bytes_read += static_cast<std::uint64_t>(
            static_cast<double>(elems) * static_cast<double>(esize) *
            tile_factor);
        st.shared_ops += static_cast<std::uint64_t>(
            static_cast<double>(elems) * (window_elems + tile_factor) /
            pipeline);
        break;
      }
      case PatternKind::Block2D:
      case PatternKind::Block1D:
      case PatternKind::Block2DTransposed:
      case PatternKind::Adjacency:
      case PatternKind::Permutation:
      case PatternKind::Traversal:
      case PatternKind::IrregularInput:
        // Generic streamed read of the elements this device touches.
        st.global_bytes_read += elems * esize;
        break;
      default:
        break;
      }
    } else {
      switch (s.kind) {
      case PatternKind::StructuredInjective:
        st.global_bytes_written += elems * esize; // coalesced commit
        break;
      case PatternKind::ReductiveStatic: {
        // Device-level aggregator (§4.5.2): shared atomics per element plus
        // one coalesced global commit per block.
        st.shared_atomics += static_cast<std::uint64_t>(
            static_cast<double>(elems) / pipeline);
        const std::uint64_t bins = s.datum->rows() * s.datum->row_elems();
        st.global_atomics += bins * st.blocks / 256 + st.blocks;
        st.global_bytes_written += bins * esize * st.blocks / 64;
        break;
      }
      case PatternKind::ReductiveDynamic:
      case PatternKind::IrregularOutput:
        st.shared_atomics += elems;
        st.global_bytes_written += elems * esize / 4; // sparse commits
        break;
      case PatternKind::UnstructuredInjective:
        // Scattered, uncoalesced global writes (one transaction each).
        st.global_bytes_written += elems * std::max<std::size_t>(esize, 32);
        break;
      default:
        break;
      }
    }
  }
  return st;
}

} // namespace maps::multi
