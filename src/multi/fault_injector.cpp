#include "multi/fault_injector.hpp"

#include <memory>

namespace maps::multi {

FaultInjector kill_at_nth(int slot, KillStage stage, int n) {
  struct Counter {
    int remaining;
    bool fired = false;
  };
  auto state = std::make_shared<Counter>(Counter{n});
  return [slot, stage, state](const FaultPoint& p) {
    if (state->fired || p.slot != slot || p.stage != stage) {
      return false;
    }
    if (state->remaining-- > 0) {
      return false;
    }
    state->fired = true;
    return true;
  };
}

} // namespace maps::multi
