// The per-pattern read-span formulas, in one place.
//
// Several layers of the pipeline need to answer "which datum rows does a
// device's sweep over work rows [w0, w1) read?" for a declared access
// pattern: the segmenter's interior/boundary strip classifier
// (compute_strips), the scheduler's strip-span construction (build_strips),
// the access sanitizer's read rectangles (split_read_rows feeding
// PatternPost::reads), and — since PR 7 — the symbolic transfer-inference
// verifier, which evaluates the same formulas over symbolic segment
// boundaries instead of concrete rows. Keeping the formulas here, derived
// from PatternSpec::read_span_formula(), means a pattern change cannot move
// one consumer without moving the proofs and the checks with it.
#pragma once

#include <vector>

#include "multi/interval_set.hpp"
#include "multi/pattern_spec.hpp"
#include "multi/segmenter.hpp"

namespace maps::multi {

/// Lowest virtual datum row a PartitionAligned/CustomAligned sweep over work
/// rows starting at `w0` reads (may be negative: rows below the global edge
/// are resolved through the pattern's boundary mode).
inline long read_span_lo(const PatternSpec& spec, std::size_t w0) {
  const ReadSpanFormula f = spec.read_span_formula();
  return static_cast<long>(spec.scale_rows_begin(w0)) + f.lo_offset;
}

/// One-past-the-highest virtual datum row the sweep over work rows ending at
/// `w1` reads (may exceed the datum: resolved through the boundary mode).
inline long read_span_hi(const PatternSpec& spec, std::size_t w1) {
  const ReadSpanFormula f = spec.read_span_formula();
  return static_cast<long>(spec.scale_rows_end(w1)) + f.hi_offset;
}

/// Whether a segment-requirement copy region lands at its global position
/// (core band / interior halo) or in a Wrap/Clamp halo slot that must be
/// refilled by a boundary copy every task. This single predicate decides the
/// scheduler's copy planning (plan_copies_for), the sanitizer's read-rect
/// classification (split_read_rows) and the symbolic verifier's model of
/// which copies may update the location monitor.
inline bool region_lands_aligned(const CopyRegion& region, long origin) {
  return region.local_row + origin == static_cast<long>(region.global.begin);
}

} // namespace maps::multi
