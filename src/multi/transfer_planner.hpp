// Transfer routing layer between the Segment Location Monitor and the
// Scheduler.
//
// Algorithm 2 answers *what* must move (which rows are missing at the target
// and who holds them); this layer decides *how* the movement is routed over
// the node's interconnect. The monitor's own source choice is purely
// positional — first covering location wins — which is oblivious to the
// topology's link classes (in-pair P2P vs cross-bus P2P vs host PCIe) and to
// the load the current task has already placed on each shared link. Under
// the simulator's contention model (per-bus host links, a full-duplex
// inter-socket link; see sim/topology.hpp) that obliviousness costs real
// simulated time: a one-to-many replication naively crosses the shared link
// once per *target*, when crossing once per *bus* and forwarding in-pair is
// strictly cheaper.
//
// The planner re-sources every CopyOp with a greedy earliest-finish rule
// over all locations whose up-to-date holdings cover the op's rows:
//
//   finish(src) = max(replica_ready(src), shared_links_free(src->dst),
//                     dst_copy_engines_free) + transfer_time(src->dst)
//
// with deterministic tie-breaking on (link class rank, location index).
// Because the scheduler plans device slots sequentially and marks routed
// replicas copied in the monitor as it goes, a replica the planner just
// routed to one device immediately becomes a candidate source for the next
// device — multicast fan-out trees (cross the shared bus once, forward
// within the pair) *emerge* from the cost rule rather than being prescribed.
// The per-task load tracker is what makes this work: the second h2d of a
// broadcast sees the uplink busy and the pair-mate's fresh replica cheap.
//
// Finally, ops that end up adjacent with the same source are coalesced into
// one transfer (each op pays the per-transfer latency in the simulator).
//
// On cluster topologies (sim::Topology::cluster) the same rule becomes
// hierarchical. The load model gains the per-node NICs, the duration
// estimate gains the network hop (mirroring sim::copy_seconds exactly), and
// the candidate set per op shrinks from every location to: the monitor's own
// pick, the host, the destination node's locations, and one fresh-replica
// gateway per remote node. Under NIC contention the earliest-finish rule
// then crosses the network once per destination *node* — the first transfer
// into a node pays the NIC hop, after which that node's replica is the
// cheapest source for its neighbours — and remote gateways with fresh
// replicas forward across their own NICs, so one-to-many distributions form
// inter-node trees instead of serializing on the head node's egress NIC.
// The reduce dual (Scheduler::ReduceScatter) pre-combines partials within
// each node before its combined segment crosses the network once.
//
// Everything here is deterministic and runs at plan-build time only: routed
// plans are baked into the immutable PlanShape, flow through the scheduler's
// plan cache unchanged, and replay without consulting the planner again.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "multi/datum.hpp"
#include "multi/location_monitor.hpp"
#include "multi/symbolic_verifier.hpp"
#include "sim/topology.hpp"

namespace maps::multi {

/// Transfer accounting of one task (or, summed, of a run). Byte counters
/// classify planned input transfers by the physical path they take; the copy
/// counters expose what routing and coalescing did to Algorithm 2's raw op
/// list.
struct TransferStats {
  std::uint64_t bytes_h2d = 0;
  std::uint64_t bytes_d2h = 0;
  std::uint64_t bytes_p2p_same_bus = 0;
  std::uint64_t bytes_p2p_cross_bus = 0;
  std::uint64_t bytes_host_staged = 0;
  // Network link classes (cluster topologies only; see sim::LinkClass).
  // Transfers are classified by the full path they take, so cross-node
  // traffic lands here rather than in the single-node counters above.
  std::uint64_t bytes_net_send = 0;   ///< remote device -> head host
  std::uint64_t bytes_net_recv = 0;   ///< head host -> remote device
  std::uint64_t bytes_net_staged = 0; ///< device -> device across nodes

  std::uint32_t copies_planned = 0;   ///< raw Algorithm-2 ops before routing
  std::uint32_t copies_issued = 0;    ///< transfers actually dispatched
  std::uint32_t copies_rerouted = 0;  ///< ops whose source the planner changed
  std::uint32_t copies_coalesced = 0; ///< ops merged into an adjacent one
  std::uint32_t copies_chunked = 0;   ///< extra pieces from row-range chunking
  std::uint32_t max_fanout_depth = 0; ///< longest replica-forwarding chain
  /// Deepest chunk pipeline of any single routed transfer: the number of
  /// chunk pieces one oversize op was split into (1 = unchunked). Network
  /// crossings pipeline their D2H / NIC / H2D hops at this depth.
  std::uint32_t max_pipeline_depth = 0;
  /// Chunk-piece bytes by class: pieces whose route crosses the inter-node
  /// network (the pipelining win lives here) vs pieces staying within one
  /// node. Both are also counted in the per-link-class byte counters above;
  /// chunking must never change bytes_total().
  std::uint64_t bytes_chunked_network = 0;
  std::uint64_t bytes_chunked_intranode = 0;
  /// Routed ops whose chosen source crosses the inter-node network: the
  /// hierarchical planner's claim — one crossing per destination node, not
  /// per destination device — is asserted against this counter.
  std::uint32_t staged_routes_planned = 0;
  /// Source candidates examined by route(), summed over ops. The planner's
  /// per-op scan is O(gpus-per-node + nodes) on a cluster, not O(devices);
  /// benches gate the asymptotics on this deterministic counter instead of
  /// noisy wall-clock time.
  std::uint64_t candidates_scanned = 0;

  /// Sum of every byte category — the total data the task actually moves.
  /// Routing, coalescing and chunking may reclassify bytes between
  /// categories but must never change this total.
  std::uint64_t bytes_total() const {
    return bytes_h2d + bytes_d2h + bytes_p2p_same_bus + bytes_p2p_cross_bus +
           bytes_host_staged + bytes_net_send + bytes_net_recv +
           bytes_net_staged;
  }

  void add(const TransferStats& o) {
    bytes_h2d += o.bytes_h2d;
    bytes_d2h += o.bytes_d2h;
    bytes_p2p_same_bus += o.bytes_p2p_same_bus;
    bytes_p2p_cross_bus += o.bytes_p2p_cross_bus;
    bytes_host_staged += o.bytes_host_staged;
    bytes_net_send += o.bytes_net_send;
    bytes_net_recv += o.bytes_net_recv;
    bytes_net_staged += o.bytes_net_staged;
    copies_planned += o.copies_planned;
    copies_issued += o.copies_issued;
    copies_rerouted += o.copies_rerouted;
    copies_coalesced += o.copies_coalesced;
    copies_chunked += o.copies_chunked;
    max_fanout_depth = std::max(max_fanout_depth, o.max_fanout_depth);
    max_pipeline_depth = std::max(max_pipeline_depth, o.max_pipeline_depth);
    bytes_chunked_network += o.bytes_chunked_network;
    bytes_chunked_intranode += o.bytes_chunked_intranode;
    staged_routes_planned += o.staged_routes_planned;
    candidates_scanned += o.candidates_scanned;
  }
};

/// Out-of-core spill/refill accounting (DESIGN.md §5.16). Spill routes —
/// dirty-segment write-backs under the device-memory budget and the refills
/// that rematerialize evicted rows — are ordinary planned copies, but they
/// are policy traffic rather than algorithmic data movement, so they carry
/// their own TransferStats instead of blending into the per-task transfer
/// counters — `spill` isolates what the budget cost on top of the data
/// movement the program inherently needs.
struct SpillStats {
  std::uint64_t evictions = 0;      ///< device allocations evicted (LRU)
  std::uint64_t refills = 0;        ///< planned copies refilling evicted rows
  std::uint64_t bytes_spilled = 0;  ///< dirty bytes written back on eviction
  std::uint64_t bytes_refilled = 0; ///< bytes of refill copies
  std::uint64_t pass_count = 0;     ///< row-window passes of streamed tasks
  std::uint64_t streamed_tasks = 0; ///< tasks run multi-pass over windows
  /// Path classification of the spill/refill traffic itself (write-backs are
  /// d2h, refills h2d or p2p when a peer still holds the rows). Invariant:
  /// transfers.bytes_total() == bytes_spilled + bytes_refilled.
  TransferStats transfers;

  void add(const SpillStats& o) {
    evictions += o.evictions;
    refills += o.refills;
    bytes_spilled += o.bytes_spilled;
    bytes_refilled += o.bytes_refilled;
    pass_count += o.pass_count;
    streamed_tasks += o.streamed_tasks;
    transfers.add(o.transfers);
  }
};

class TransferPlanner {
public:
  /// `devices` maps scheduler slots to sim device indices (location 1 + slot
  /// corresponds to devices[slot]).
  TransferPlanner(const SegmentLocationMonitor& monitor,
                  const sim::Topology& topo, std::vector<int> devices);

  /// Resets the per-task load tracker and fresh-replica table. Called once
  /// per plan build; route() calls within one task share the load state so
  /// the cost estimates see the task's own earlier transfers.
  void begin_task();

  /// Re-sources, load-balances and coalesces one target's copy ops. `ops`
  /// must come from SegmentLocationMonitor::plan_copies for the same datum
  /// and target; the returned list moves exactly the same rows (possibly
  /// from different sources, possibly merged). Routing statistics are
  /// accumulated into `stats`; byte accounting is the caller's job (it knows
  /// the final staging mode).
  std::vector<SegmentLocationMonitor::CopyOp>
  route(const Datum* datum, int target_location, std::size_t row_bytes,
        std::vector<SegmentLocationMonitor::CopyOp> ops, TransferStats& stats);

  /// Classifies one planned transfer and adds its bytes to the matching
  /// counter of `stats`. Shared by the planner-on and planner-off paths so
  /// the byte attribution is identical in both.
  static void account(TransferStats& stats, const sim::Topology& topo,
                      sim::Endpoint src, sim::Endpoint dst, bool host_staged,
                      std::uint64_t bytes);

  /// Symbolic mirror of route() for the transfer-inference verifier: given
  /// the copies Algorithm 2 planned symbolically, re-sources each one the
  /// way the greedy earliest-finish rule prefers (device replicas beat host
  /// staging, and replicas created by earlier copies of the same task are
  /// candidate forwarding sources — the multicast fan-out shape), but ONLY
  /// to locations whose holdings provably cover the rows for every member
  /// of the partition family. Routing's correctness contract — destination
  /// rows, alignment and zero-fill classification are never rewritten, so
  /// coverage of the read set is invariant under routing — holds by
  /// construction here and is re-proved downstream: the verifier checks
  /// coverage on the *routed* set, so a routing bug that dropped or moved
  /// destination rows would surface as an uncovered rectangle.
  static std::vector<sym::Copy> symbolic_route(const sym::Family& family,
                                               const sym::MonitorState& state,
                                               std::vector<sym::Copy> ops);

  /// Upper bound on the size of a coalesced op (0 = unlimited). The
  /// scheduler sets this to its copy-chunk threshold when compute–transfer
  /// overlap is on, so the coalescing pass never re-merges row ranges that
  /// must gate different interior/boundary strips independently.
  void set_max_coalesce_bytes(std::size_t bytes) {
    max_coalesce_bytes_ = bytes;
  }

private:
  /// A replica created by a copy routed earlier in the *current* task:
  /// usable as a source, but only ready once its transfer finishes.
  struct Fresh {
    RowInterval rows;
    double ready_s = 0.0;
    std::uint32_t depth = 0; ///< forwarding-chain length that produced it
  };

  /// Per-datum fresh-replica state for one task. Beyond the per-location
  /// replica lists this keeps two incrementally-maintained digests so
  /// route() stays sub-linear in device count: the sorted-unique row
  /// boundaries of every replica (op splitting consults them directly
  /// instead of rescanning all locations), and the sorted list of locations
  /// that hold any fresh replica (the hierarchical candidate set picks one
  /// gateway per remote cluster node from it).
  struct FreshState {
    std::vector<std::vector<Fresh>> per_loc;
    std::vector<int> fresh_locs;    ///< ascending locations with replicas
    std::vector<std::size_t> cuts;  ///< sorted unique replica row boundaries
  };

  sim::Endpoint endpoint(int location) const;
  double link_free(const sim::Topology::LinkUse& use) const;
  void reserve_links(const sim::Topology::LinkUse& use, double until);
  /// Estimated ready time and chain depth of `rows` at `loc` (0/0 for
  /// replicas that existed before this task).
  std::pair<double, std::uint32_t> source_state(const FreshState* fs, int loc,
                                                const RowInterval& rows) const;
  /// Candidate source locations for one op targeting `target_location`:
  /// every location on a single node; on a cluster, the monitor's own pick,
  /// the host, the target node's locations, and one fresh-replica gateway
  /// per remote node — O(gpus-per-node + nodes), not O(devices).
  void collect_candidates(const FreshState* fs, int op_src,
                          int target_location);

  const SegmentLocationMonitor& monitor_;
  const sim::Topology& topo_;
  std::vector<int> devices_;
  /// Cluster node of each location (index 0 = host = head node).
  std::vector<int> loc_node_;
  /// Locations per cluster node (host excluded; ascending within a node).
  std::vector<std::vector<int>> node_locs_;

  // Per-task shared-link and destination-engine load estimates, in seconds
  // of estimated busy-until time relative to the task's start. These mirror
  // the simulator's LinkState/DeviceEngines bookkeeping in miniature; they
  // only need to be accurate *relative to each other* for the greedy rule to
  // pick the right source.
  std::vector<double> uplink_busy_;   ///< per bus
  std::vector<double> downlink_busy_; ///< per bus
  std::vector<std::array<double, 2>> socket_busy_; ///< per node, per direction
  std::vector<std::array<double, 2>> engine_busy_; ///< per slot, two engines
  std::vector<double> nic_send_busy_; ///< per cluster node (egress NIC)
  std::vector<double> nic_recv_busy_; ///< per cluster node (ingress NIC)
  /// Fresh replicas routed this task: datum key -> per-location state.
  std::unordered_map<const void*, FreshState> fresh_;
  /// Rotates which fresh replica of a remote node is offered as that node's
  /// gateway, so concurrent ops spread their NIC egress load across the
  /// node's replica holders instead of all forwarding from the first one.
  /// Reset per task (begin_task) so identical tasks plan identically — a
  /// plan-cache requirement.
  std::uint64_t gateway_rotation_ = 0;
  std::vector<int> cand_buf_; ///< scratch for collect_candidates
  std::size_t max_coalesce_bytes_ = 0; ///< 0 = no cap (see setter)
};

} // namespace maps::multi
