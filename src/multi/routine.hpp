// Unmodified GPU routine support (§4.6, Fig 5 of the paper).
//
// Highly optimized existing routines (CUBLAS-style libraries) run on
// multiple GPUs through wrapper functions with a predetermined prototype:
// the scheduler still derives segmentation and inter-GPU exchanges from the
// declared access patterns, but instead of sweeping a MAPS kernel it calls
// the wrapper once per device with the device index, stream, buffer
// pointers and their memory segments — the wrapper enqueues whatever device
// work it wants (Fig 5 does exactly this with cublasSaxpy).
#pragma once

#include <cstring>
#include <functional>
#include <stdexcept>
#include <vector>

#include "sim/node.hpp"

#include "multi/pattern_spec.hpp"

namespace maps::multi {

/// One container argument as seen by the routine on one device: the device
/// buffer plus the geometry of the local segment.
struct RoutineParam {
  sim::Buffer* buffer = nullptr;
  std::size_t byte_offset = 0; ///< Segment start within the buffer.
  DeviceView view;             ///< Full local geometry.

  /// Typed pointer to the segment start (Functional mode only).
  template <typename T> T* as() const {
    return buffer->has_backing() ? buffer->as<T>(byte_offset) : nullptr;
  }
};

/// Shape of one container's local segment (the paper's container_segments).
struct Segment {
  std::size_t global_row_begin = 0;
  std::size_t global_row_end = 0;
  /// Local segment dimensions: m_dimensions[0] is the partitioned extent.
  std::vector<std::size_t> m_dimensions;
  std::size_t rows() const { return global_row_end - global_row_begin; }
};

/// Everything a routine wrapper receives per device (Fig 5's argument list).
struct RoutineArgs {
  sim::Node* node = nullptr;
  int device_idx = 0;  ///< Scheduler slot.
  int sim_device = 0;  ///< Simulator device id.
  sim::StreamId stream = 0;
  void* context = nullptr; ///< Programmer-generated context object.

  std::vector<RoutineParam> parameters;
  std::vector<Segment> container_segments;
  std::vector<std::vector<std::byte>> constants;

  /// GetConstantParameter (Fig 5 line 4).
  template <typename T> T constant(std::size_t index) const {
    if (index >= constants.size() ||
        constants[index].size() != sizeof(T)) {
      throw std::invalid_argument("routine: bad constant parameter access");
    }
    T value;
    std::memcpy(&value, constants[index].data(), sizeof(T));
    return value;
  }
};

/// Wrapper prototype. Return false to signal failure (surfaces as an
/// exception at the next scheduler synchronization point).
using UnmodifiedRoutine = std::function<bool(RoutineArgs&)>;

/// Invocation-specific constant input (§2.1: fixed-size parameters needed by
/// all GPUs, e.g. computational factors).
template <typename T> struct Constant {
  explicit Constant(const T& v) : value(v) {}
  T value;
};

/// Explicit work dimensions for unmodified-routine tasks (MAPS kernels
/// derive theirs from the output containers; routines have no grid).
struct Work {
  std::size_t rows = 0;
  std::size_t cols = 1;
  /// Forces the task onto a single device (e.g. baseline systems that
  /// perform all weight updates on one GPU, §6.1).
  bool single_device = false;
};

} // namespace maps::multi
