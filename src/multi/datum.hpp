// Datum: the host-side N-dimensional data structure of the MAPS-Multi
// programming paradigm (§2.1).
//
// A Datum never owns host memory — the paradigm binds each datum to an
// existing host buffer (`Bind`, Table 2), mirroring the paper's design where
// host memory management stays outside the framework. Device-side instances
// are allocated by the Memory Analyzer (memory_analyzer.hpp).
//
// Layout is row-major with the partition dimension outermost (dimension 0):
// Matrix<T>(width, height) has dims {height, width} and is partitioned in
// row bands; NDArray<T, N> is partitioned along its first dimension.
#pragma once

#include <array>
#include <cstddef>
#include <functional>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace maps::multi {

/// Type-erased host-bound N-D array. Concrete typed wrappers below.
class Datum {
public:
  Datum(std::string name, std::vector<std::size_t> dims,
        std::size_t elem_size);
  virtual ~Datum() = default;
  Datum(const Datum&) = delete;
  Datum& operator=(const Datum&) = delete;

  /// Registers an existing host buffer as this datum's storage (Table 2).
  void BindRaw(void* host_ptr) { host_ptr_ = host_ptr; }
  bool bound() const { return host_ptr_ != nullptr; }
  void* host_raw() const { return host_ptr_; }

  const std::string& name() const { return name_; }
  const std::vector<std::size_t>& dims() const { return dims_; }
  std::size_t elem_size() const { return elem_size_; }

  /// Extent of the partition dimension.
  std::size_t rows() const { return dims_[0]; }
  /// Bytes per dimension-0 slice ("row band" unit).
  std::size_t row_bytes() const { return row_bytes_; }
  /// Elements per dimension-0 slice.
  std::size_t row_elems() const { return row_bytes_ / elem_size_; }
  std::size_t total_bytes() const { return row_bytes_ * rows(); }

  std::byte* host_row(std::size_t row) const {
    return static_cast<std::byte*>(host_ptr_) + row * row_bytes_;
  }

  /// Stable identity used as the location-monitor key.
  const void* key() const { return this; }

private:
  std::string name_;
  std::vector<std::size_t> dims_;
  std::size_t elem_size_;
  std::size_t row_bytes_;
  void* host_ptr_ = nullptr;
};

/// 1-D datum of T.
template <typename T> class Vector : public Datum {
public:
  explicit Vector(std::size_t n, std::string name = "vector")
      : Datum(std::move(name), {n}, sizeof(T)) {}
  void Bind(T* host) { BindRaw(host); }
  std::size_t length() const { return dims()[0]; }
};

/// 2-D datum of T. Constructor order follows the paper: Matrix<T>(width,
/// height) (Fig 2a line 5); storage is row-major, partitioned by rows.
template <typename T> class Matrix : public Datum {
public:
  Matrix(std::size_t width, std::size_t height, std::string name = "matrix")
      : Datum(std::move(name), {height, width}, sizeof(T)) {}
  void Bind(T* host) { BindRaw(host); }
  std::size_t width() const { return dims()[1]; }
  std::size_t height() const { return dims()[0]; }
};

/// N-dimensional datum of T, partitioned along dimension 0 (e.g. the batch
/// dimension of the 4-D tensors in the paper's deep-learning application).
template <typename T, std::size_t N> class NDArray : public Datum {
public:
  explicit NDArray(std::array<std::size_t, N> dims,
                   std::string name = "ndarray")
      : Datum(std::move(name), {dims.begin(), dims.end()}, sizeof(T)) {}
  void Bind(T* host) { BindRaw(host); }
};

} // namespace maps::multi
