// Symbolic transfer-inference verifier — engine and abstract interpreter.
//
// Layout mirrors the pipeline it proves things about:
//   1. the affine expression engine (exact decisions over box-constrained
//      integer assignments),
//   2. the conservative interval algebra (over/under subtraction),
//   3. the abstract interpreter over SymStep chains (segmenter regions →
//      Algorithm 2 planning → monitor freshness evolution → read/write
//      obligations),
//   4. the shipped-pattern certification sweep (the CI `symbolic-cert` gate).
#include "multi/symbolic_verifier.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "multi/read_spans.hpp"
#include "multi/segmenter.hpp"
#include "multi/transfer_planner.hpp"

namespace maps::multi::sym {

// --- Affine expressions ------------------------------------------------------

namespace {
void widen(Expr& a, std::size_t n) {
  if (a.coef.size() < n) {
    a.coef.resize(n, 0);
  }
}
} // namespace

Expr operator+(Expr a, const Expr& b) {
  widen(a, b.coef.size());
  a.cst += b.cst;
  for (std::size_t i = 0; i < b.coef.size(); ++i) {
    a.coef[i] += b.coef[i];
  }
  return a;
}

Expr operator-(Expr a, const Expr& b) {
  widen(a, b.coef.size());
  a.cst -= b.cst;
  for (std::size_t i = 0; i < b.coef.size(); ++i) {
    a.coef[i] -= b.coef[i];
  }
  return a;
}

Expr operator+(Expr a, long c) {
  a.cst += c;
  return a;
}

Expr operator-(Expr a, long c) {
  a.cst -= c;
  return a;
}

Expr operator*(long k, Expr a) {
  a.cst *= k;
  for (long& c : a.coef) {
    c *= k;
  }
  return a;
}

// --- Families ----------------------------------------------------------------

Family Family::unaligned(int slots, long min_gap, long unit) {
  Family f;
  f.slots = slots;
  f.unit = unit;
  f.aligned_shape = false;
  for (int i = 0; i < slots; ++i) {
    f.vars.push_back(Var{"g" + std::to_string(i), min_gap, kUnbounded});
  }
  f.gap_prefix.resize(static_cast<std::size_t>(slots) + 1, f.constant(0));
  for (int i = 0; i < slots; ++i) {
    f.gap_prefix[static_cast<std::size_t>(i) + 1] =
        f.gap_prefix[static_cast<std::size_t>(i)] + f.var(i);
  }
  for (const Expr& p : f.gap_prefix) {
    f.work_bounds.push_back(unit * p);
  }
  std::ostringstream os;
  os << slots << " device(s), unaligned gaps >= " << min_gap;
  if (unit != 1) {
    os << " x " << unit << " rows";
  }
  f.name = os.str();
  return f;
}

Family Family::aligned(int slots, long min_gap, long unit) {
  Family f;
  f.slots = slots;
  f.unit = unit;
  f.aligned_shape = true;
  f.vars.push_back(Var{"g", min_gap, kUnbounded});
  for (int i = 0; i <= slots; ++i) {
    f.gap_prefix.push_back(i * f.var(0));
    f.work_bounds.push_back(unit * f.gap_prefix.back());
  }
  std::ostringstream os;
  os << slots << " device(s), aligned even split, gap >= " << min_gap;
  if (unit != 1) {
    os << " x " << unit << " rows";
  }
  f.name = os.str();
  return f;
}

Expr Family::constant(long c) const {
  Expr e;
  e.cst = c;
  e.coef.assign(vars.size(), 0);
  return e;
}

Expr Family::var(int i) const {
  Expr e;
  e.coef.assign(vars.size(), 0);
  e.coef[static_cast<std::size_t>(i)] = 1;
  return e;
}

long Family::min_value(const Expr& e) const {
  long m = e.cst;
  for (std::size_t i = 0; i < e.coef.size() && i < vars.size(); ++i) {
    const long c = e.coef[i];
    if (c == 0) {
      continue;
    }
    if (c > 0) {
      m += c * vars[i].lb;
    } else {
      if (vars[i].ub == kUnbounded) {
        return std::numeric_limits<long>::min();
      }
      m += c * vars[i].ub;
    }
  }
  return m;
}

bool Family::provable_nonneg(const Expr& e) const {
  const long m = min_value(e);
  return m != std::numeric_limits<long>::min() && m >= 0;
}

bool Family::provable_le(const Expr& a, const Expr& b) const {
  return provable_nonneg(b - a);
}

bool Family::provable_eq(const Expr& a, const Expr& b) const {
  return provable_le(a, b) && provable_le(b, a);
}

long Family::eval(const Expr& e, const std::vector<long>& gaps) const {
  long v = e.cst;
  for (std::size_t i = 0; i < e.coef.size() && i < gaps.size(); ++i) {
    v += e.coef[i] * gaps[i];
  }
  return v;
}

namespace {
/// Renders cst + Σ terms, where terms are (display name, coefficient).
std::string render(long cst,
                   const std::vector<std::pair<std::string, long>>& terms) {
  std::ostringstream os;
  bool first = true;
  for (const auto& [name, c] : terms) {
    if (c == 0) {
      continue;
    }
    if (first) {
      if (c == -1) {
        os << "-";
      } else if (c != 1) {
        os << c << "*";
      }
      os << name;
      first = false;
    } else {
      os << (c > 0 ? " + " : " - ");
      const long a = c > 0 ? c : -c;
      if (a != 1) {
        os << a << "*";
      }
      os << name;
    }
  }
  if (first) {
    os << cst;
  } else if (cst > 0) {
    os << " + " << cst;
  } else if (cst < 0) {
    os << " - " << -cst;
  }
  return os.str();
}
} // namespace

std::string Family::print(const Expr& e) const {
  Expr padded = e;
  widen(padded, vars.size());
  // Try the boundary basis: e = cst + Σ_j d_j·b_j with b_j = unit·(g_0+…+
  // g_{j-1}) and b_slots printed as R. Works when every gap coefficient is a
  // whole multiple of `unit` and the family has independent per-slot gaps.
  if (!aligned_shape && slots > 0 &&
      padded.coef.size() == static_cast<std::size_t>(slots)) {
    bool whole = true;
    std::vector<long> t(static_cast<std::size_t>(slots) + 1, 0);
    for (int i = 0; i < slots; ++i) {
      const long c = padded.coef[static_cast<std::size_t>(i)];
      if (c % unit != 0) {
        whole = false;
        break;
      }
      t[static_cast<std::size_t>(i)] = c / unit;
    }
    if (whole) {
      std::vector<std::pair<std::string, long>> terms;
      for (int j = 1; j <= slots; ++j) {
        const long d = t[static_cast<std::size_t>(j) - 1] -
                       t[static_cast<std::size_t>(j)];
        const std::string name =
            j == slots ? std::string("R") : "b" + std::to_string(j);
        terms.emplace_back(name, d);
      }
      return render(padded.cst, terms);
    }
  }
  std::vector<std::pair<std::string, long>> terms;
  for (std::size_t i = 0; i < vars.size(); ++i) {
    terms.emplace_back(vars[i].name, padded.coef[i]);
  }
  return render(padded.cst, terms);
}

std::string Family::print(const Interval& iv) const {
  return "[" + print(iv.lo) + ", " + print(iv.hi) + ")";
}

// --- Conservative interval algebra -------------------------------------------

bool provably_empty(const Family& f, const Interval& iv) {
  return f.provable_le(iv.hi, iv.lo);
}

bool provably_disjoint(const Family& f, const Interval& a, const Interval& b) {
  return provably_empty(f, a) || provably_empty(f, b) ||
         f.provable_le(a.hi, b.lo) || f.provable_le(b.hi, a.lo);
}

bool provably_contains(const Family& f, const Interval& outer,
                       const Interval& inner) {
  return provably_empty(f, inner) ||
         (f.provable_le(outer.lo, inner.lo) &&
          f.provable_le(inner.hi, outer.hi));
}

std::vector<Interval> subtract_over(const Family& f, const Interval& r,
                                    const Interval& p) {
  if (provably_empty(f, r)) {
    return {};
  }
  if (provably_empty(f, p) || provably_disjoint(f, r, p)) {
    return {r};
  }
  if (!(f.provable_le(p.lo, r.hi) && f.provable_le(r.lo, p.hi))) {
    // Overlap is possible but not provable: splitting on p's endpoints
    // would fabricate flanks for members where p misses r entirely. The
    // untouched r is the tighter (still sound) over-approximation.
    return {r};
  }
  std::vector<Interval> out;
  const Interval left{r.lo, p.lo};
  if (!provably_empty(f, left)) {
    out.push_back(left);
  }
  const Interval right{p.hi, r.hi};
  if (!provably_empty(f, right)) {
    out.push_back(right);
  }
  return out;
}

std::vector<Interval> subtract_under(const Family& f, const Interval& r,
                                     const Interval& p) {
  if (provably_empty(f, r)) {
    return {};
  }
  if (provably_empty(f, p) || provably_disjoint(f, r, p)) {
    return {r};
  }
  std::vector<Interval> out;
  // Each kept piece must be inside r and outside p for EVERY family member;
  // incomparable endpoints drop rows (freshness is only ever understated).
  const Interval left{r.lo, p.lo};
  if (f.provable_le(p.lo, r.hi) && !provably_empty(f, left)) {
    out.push_back(left);
  }
  const Interval right{p.hi, r.hi};
  if (f.provable_le(r.lo, p.hi) && !provably_empty(f, right)) {
    out.push_back(right);
  }
  return out;
}

std::vector<Interval> subtract_over_set(const Family& f,
                                        std::vector<Interval> required,
                                        const std::vector<Interval>& covered) {
  for (const Interval& p : covered) {
    std::vector<Interval> next;
    for (const Interval& r : required) {
      for (Interval& piece : subtract_over(f, r, p)) {
        next.push_back(std::move(piece));
      }
    }
    required = std::move(next);
  }
  return required;
}

} // namespace maps::multi::sym

namespace maps::multi {

// --- Chain steps and results -------------------------------------------------

SymStep SymStep::task(std::vector<SymArg> args) {
  SymStep s;
  s.kind = Kind::Task;
  s.args = std::move(args);
  return s;
}

SymStep SymStep::gather(int datum) {
  SymStep s;
  s.kind = Kind::Gather;
  s.datum = datum;
  return s;
}

SymStep SymStep::host_write(int datum) {
  SymStep s;
  s.kind = Kind::HostWrite;
  s.datum = datum;
  return s;
}

void CertResult::merge(const CertResult& o) {
  ok = ok && o.ok;
  failures.insert(failures.end(), o.failures.begin(), o.failures.end());
  iterations = std::max(iterations, o.iterations);
  obligations += o.obligations;
  families += o.families;
}

std::string CertResult::summary() const {
  std::ostringstream os;
  os << (ok ? "OK" : "FAIL") << ": " << families << " family(ies) certified, "
     << obligations << " obligation(s) proved";
  if (!failures.empty()) {
    const SymFailure& f = failures.front();
    os << ", " << failures.size() << " failure(s); first: " << f.what;
    if (!f.rect.empty()) {
      os << " " << f.rect;
    }
    os << " (" << f.detail << ")";
  }
  return os.str();
}

// --- Verifier context and helpers --------------------------------------------

struct SymbolicVerifier::Ctx {
  sym::MonitorState state;
  CertResult* res = nullptr;
  int iteration = 0;
  /// (arg index, slot) -> rows covered by this task's unaligned halo copies.
  std::map<std::pair<int, int>, std::vector<sym::Interval>> halo_cover;
};

SymbolicVerifier::SymbolicVerifier(sym::Family family)
    : family_(std::move(family)) {}

void SymbolicVerifier::set_datum_scale(int datum, long num) {
  scales_[datum] = num;
}

void SymbolicVerifier::set_read_span_mutator(
    std::function<void(ReadSpanFormula&)> m) {
  mutator_ = std::move(m);
}

void SymbolicVerifier::set_copy_filter(
    std::function<bool(const sym::Copy&)> f) {
  filter_ = std::move(f);
}

long SymbolicVerifier::datum_scale(int datum) const {
  const auto it = scales_.find(datum);
  return it == scales_.end() ? 1 : it->second;
}

sym::Expr SymbolicVerifier::datum_rows(int datum) const {
  return datum_scale(datum) * family_.work_rows();
}

sym::DatumState& SymbolicVerifier::state_for(Ctx& ctx, int datum) {
  sym::DatumState& st = ctx.state[datum];
  if (st.fresh.empty()) {
    // Cold start: the host holds the whole datum (gather-to-host is the
    // concrete monitor's initial state too).
    st.fresh.resize(static_cast<std::size_t>(family_.slots) + 1);
    st.fresh[0].push_back(
        sym::Interval{family_.constant(0), datum_rows(datum)});
  }
  return st;
}

int SymbolicVerifier::task_slots(const SymStep& step) const {
  for (const SymArg& a : step.args) {
    if (a.spec.seg == Segmentation::SingleDevice) {
      return 1;
    }
  }
  return family_.slots;
}

sym::Expr SymbolicVerifier::task_bound(const SymStep& step, int i) const {
  if (task_slots(step) == family_.slots) {
    return family_.work_bound(i);
  }
  // Single-device task: slot 0 covers the whole work space.
  return i == 0 ? family_.constant(0) : family_.work_rows();
}

void SymbolicVerifier::fail(Ctx& ctx, std::size_t step, int datum, int slot,
                            std::string what, std::string rect,
                            std::string detail) {
  ctx.res->ok = false;
  ctx.res->failures.push_back(SymFailure{step, ctx.iteration, datum, slot,
                                         std::move(what), std::move(rect),
                                         std::move(detail)});
}

void SymbolicVerifier::normalize(std::vector<sym::Interval>& set) const {
  const sym::Family& f = family_;
  std::vector<sym::Interval> out;
  for (sym::Interval& iv : set) {
    if (!sym::provably_empty(f, iv)) {
      // Canonical coefficient width, so fixpoint comparison (syntactic
      // equality) never distinguishes equal values built differently.
      if (iv.lo.coef.size() < f.vars.size()) {
        iv.lo.coef.resize(f.vars.size(), 0);
      }
      if (iv.hi.coef.size() < f.vars.size()) {
        iv.hi.coef.resize(f.vars.size(), 0);
      }
      out.push_back(std::move(iv));
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < out.size() && !changed; ++i) {
      for (std::size_t j = 0; j < out.size(); ++j) {
        if (i == j) {
          continue;
        }
        if (sym::provably_contains(f, out[i], out[j])) {
          out.erase(out.begin() + static_cast<long>(j));
          changed = true;
          break;
        }
        // Provable overlap-or-adjacency extending i to the right: merge.
        if (f.provable_le(out[i].lo, out[j].lo) &&
            f.provable_le(out[j].lo, out[i].hi) &&
            f.provable_le(out[i].hi, out[j].hi)) {
          out[i].hi = out[j].hi;
          out.erase(out.begin() + static_cast<long>(j));
          changed = true;
          break;
        }
      }
    }
  }
  const auto expr_key = [](const sym::Expr& a, const sym::Expr& b) {
    if (a.cst != b.cst) {
      return a.cst < b.cst;
    }
    return a.coef < b.coef;
  };
  std::sort(out.begin(), out.end(),
            [&](const sym::Interval& a, const sym::Interval& b) {
              if (!(a.lo == b.lo)) {
                return expr_key(a.lo, b.lo);
              }
              return expr_key(a.hi, b.hi);
            });
  set = std::move(out);
}

// --- Segmenter mirror: per-(arg, slot) requirement regions -------------------

std::vector<SymbolicVerifier::RegionTrace>
SymbolicVerifier::regions_for(Ctx& ctx, const SymStep& step, std::size_t index,
                              int arg_index, int slot) {
  std::vector<RegionTrace> out;
  const SymArg& arg = step.args[static_cast<std::size_t>(arg_index)];
  const PatternSpec& spec = arg.spec;
  const sym::Family& f = family_;
  const int slots = task_slots(step);
  const sym::Expr R = datum_rows(arg.datum);
  const auto push = [&](sym::Interval global, bool zero_fill, bool aligned) {
    RegionTrace r;
    r.arg = arg_index;
    r.slot = slot;
    r.global = std::move(global);
    r.zero_fill = zero_fill;
    r.aligned = aligned;
    out.push_back(std::move(r));
  };
  switch (spec.seg) {
  case Segmentation::PartitionAligned: {
    if (!spec.is_input) {
      return out; // outputs need no pre-filled regions
    }
    if (spec.row_scale_den != 1 ||
        static_cast<long>(spec.row_scale_num) != datum_scale(arg.datum)) {
      fail(ctx, index, arg.datum, slot, "unsupported-scale", "",
           "row scale " + std::to_string(spec.row_scale_num) + "/" +
               std::to_string(spec.row_scale_den) +
               " outside the symbolic model (datum scale " +
               std::to_string(datum_scale(arg.datum)) + ")");
      return out;
    }
    const long num = static_cast<long>(spec.row_scale_num);
    const sym::Expr c0 = num * task_bound(step, slot);
    const sym::Expr c1 = num * task_bound(step, slot + 1);
    push({c0, c1}, false, true); // core band, lands aligned
    const long rl = spec.radius_low;
    const long rh = spec.radius_high;
    if (rl > 0) {
      if (slot > 0) {
        ctx.res->obligations++;
        if (!f.provable_nonneg(c0 - rl)) {
          fail(ctx, index, arg.datum, slot, "family-unsupported",
               f.print(sym::Interval{c0 - rl, c0}),
               "low halo can cross the global edge inside this family");
        }
        push({c0 - rl, c0}, false, true); // interior halo, lands aligned
      } else {
        switch (spec.boundary) {
        case maps::Boundary::Wrap:
          push({R - rl, R}, false, false);
          break;
        case maps::Boundary::Clamp:
          for (long k = 0; k < rl; ++k) {
            push({f.constant(0), f.constant(1)}, false, false);
          }
          break;
        case maps::Boundary::Zero:
          for (long k = 0; k < rl; ++k) {
            push({f.constant(0), f.constant(0)}, true, false);
          }
          break;
        case maps::Boundary::NoChecks:
          break;
        }
      }
    }
    if (rh > 0) {
      if (slot + 1 < slots) {
        ctx.res->obligations++;
        if (!f.provable_le(c1 + rh, R)) {
          fail(ctx, index, arg.datum, slot, "family-unsupported",
               f.print(sym::Interval{c1, c1 + rh}),
               "high halo can cross the global edge inside this family");
        }
        push({c1, c1 + rh}, false, true);
      } else {
        switch (spec.boundary) {
        case maps::Boundary::Wrap:
          push({f.constant(0), f.constant(rh)}, false, false);
          break;
        case maps::Boundary::Clamp:
          for (long k = 0; k < rh; ++k) {
            push({R - 1, R}, false, false);
          }
          break;
        case maps::Boundary::Zero:
          for (long k = 0; k < rh; ++k) {
            push({f.constant(0), f.constant(0)}, true, false);
          }
          break;
        case maps::Boundary::NoChecks:
          break;
        }
      }
    }
    break;
  }
  case Segmentation::Replicate:
    if (spec.is_input) {
      push({f.constant(0), R}, false, true);
    }
    break;
  case Segmentation::DuplicateFull:
    // The segmenter zero-initialises the private full copy unconditionally
    // (reductive partials start from the identity), inputs and outputs alike.
    push({f.constant(0), R}, true, false);
    break;
  case Segmentation::SingleDevice:
    if (spec.is_input && slot == 0) {
      push({f.constant(0), R}, false, true);
    }
    break;
  case Segmentation::DynamicAppend:
    break;
  case Segmentation::CustomAligned:
    fail(ctx, index, arg.datum, slot, "outside-model", "",
         "CustomAligned segmentation is outside the symbolic model "
         "(dynamic sanitizer territory)");
    break;
  }
  return out;
}

// --- Algorithm 2 mirror ------------------------------------------------------

namespace {
/// Coverage split of `r` by one fresh interval `cov`: the provably covered
/// piece (if the overlap is provable on at least one side pair) plus the
/// provable leftovers. Mirrors the concrete monitor's multi-source
/// intersection pass over symbolic endpoints.
struct SplitCover {
  bool covered = false;
  sym::Interval piece;
  std::vector<sym::Interval> leftover;
};

SplitCover split_cover(const sym::Family& f, const sym::Interval& r,
                       const sym::Interval& cov) {
  SplitCover out;
  if (sym::provably_disjoint(f, r, cov)) {
    out.leftover = {r};
    return out;
  }
  const bool lo_ge = f.provable_le(cov.lo, r.lo); // cov starts at/before r
  const bool lo_le = f.provable_le(r.lo, cov.lo);
  const bool hi_ge = f.provable_le(r.hi, cov.hi); // cov ends at/after r
  const bool hi_le = f.provable_le(cov.hi, r.hi);
  if (!((lo_ge || lo_le) && (hi_ge || hi_le))) {
    out.leftover = {r}; // endpoints incomparable: nothing provable
    return out;
  }
  sym::Interval c{lo_ge ? r.lo : cov.lo, hi_ge ? r.hi : cov.hi};
  if (!f.provable_le(c.lo, c.hi)) {
    out.leftover = {r};
    return out;
  }
  out.covered = true;
  out.piece = std::move(c);
  if (lo_le && !lo_ge) {
    out.leftover.push_back({r.lo, cov.lo});
  }
  if (hi_le && !hi_ge) {
    out.leftover.push_back({cov.hi, r.hi});
  }
  return out;
}
} // namespace

void SymbolicVerifier::plan_region(Ctx& ctx, const SymStep& step,
                                   std::size_t index, int arg_index, int slot,
                                   const RegionTrace& region,
                                   std::vector<sym::Copy>& out) {
  const sym::Family& f = family_;
  if (region.zero_fill) {
    return; // zero fills move no datum rows
  }
  const int datum = arg_index >= 0
                        ? step.args[static_cast<std::size_t>(arg_index)].datum
                        : step.datum;
  sym::DatumState& st = state_for(ctx, datum);
  if (st.pending) {
    fail(ctx, index, datum, slot, "pending-aggregation-read",
         f.print(region.global),
         "datum read while an aggregation is pending (missing gather)");
    return;
  }
  const int dst = slot < 0 ? 0 : slot + 1;
  const int locations = family_.slots + 1;
  std::vector<sym::Interval> missing;
  if (region.aligned) {
    // Aligned regions land at their global rows: the monitor tracks them, so
    // only the provably-not-fresh remainder needs to move.
    missing = sym::subtract_over_set(
        f, {region.global}, st.fresh[static_cast<std::size_t>(dst)]);
  } else {
    // Halo-slot regions land at non-global positions; they are refilled
    // every task regardless of what the destination holds.
    missing = {region.global};
  }
  const auto emit = [&](int src, sym::Interval rows) {
    sym::Copy c;
    c.datum = datum;
    c.src_location = src;
    c.dst_location = dst;
    c.rows = std::move(rows);
    c.aligned = region.aligned;
    c.slot = slot;
    c.arg = arg_index;
    out.push_back(std::move(c));
  };
  for (const sym::Interval& piece : missing) {
    if (sym::provably_empty(f, piece)) {
      continue;
    }
    ctx.res->obligations++;
    // Monitor scan order: devices 1..S, then host (l % locations).
    int single = -1;
    for (int l = 1; l <= locations && single < 0; ++l) {
      const int cand = l % locations;
      if (cand == dst && region.aligned) {
        continue; // an aligned target is never its own source
      }
      for (const sym::Interval& cov :
           st.fresh[static_cast<std::size_t>(cand)]) {
        if (sym::provably_contains(f, cov, piece)) {
          single = cand;
          break;
        }
      }
    }
    if (single >= 0) {
      emit(single, piece);
      continue;
    }
    // Multi-source: peel provable sub-pieces off per candidate, in the same
    // scan order (the concrete monitor's intersection fallback).
    std::vector<sym::Interval> rem = {piece};
    for (int l = 1; l <= locations && !rem.empty(); ++l) {
      const int cand = l % locations;
      if (cand == dst && region.aligned) {
        continue;
      }
      for (const sym::Interval& cov :
           st.fresh[static_cast<std::size_t>(cand)]) {
        std::vector<sym::Interval> next;
        for (const sym::Interval& r : rem) {
          SplitCover sc = split_cover(f, r, cov);
          if (sc.covered && !sym::provably_empty(f, sc.piece)) {
            emit(cand, sc.piece);
          }
          for (sym::Interval& lr : sc.leftover) {
            if (!sym::provably_empty(f, lr)) {
              next.push_back(std::move(lr));
            }
          }
        }
        rem = std::move(next);
        if (rem.empty()) {
          break;
        }
      }
    }
    for (const sym::Interval& r : rem) {
      fail(ctx, index, datum, slot, "no-provable-source", f.print(r),
           "no location provably holds these rows up to date");
    }
  }
}

void SymbolicVerifier::apply_copies(Ctx& ctx, std::vector<sym::Copy>& copies,
                                    std::size_t index) {
  (void)index;
  if (routing_) {
    copies = TransferPlanner::symbolic_route(family_, ctx.state,
                                             std::move(copies));
  }
  if (filter_) {
    copies.erase(std::remove_if(copies.begin(), copies.end(),
                                [&](const sym::Copy& c) {
                                  return !filter_(c);
                                }),
                 copies.end());
  }
  for (const sym::Copy& c : copies) {
    if (c.zero_fill) {
      continue;
    }
    if (c.aligned) {
      // Only aligned copies update the monitor (scheduler wire_copy rule).
      sym::DatumState& st = state_for(ctx, c.datum);
      st.fresh[static_cast<std::size_t>(c.dst_location)].push_back(c.rows);
      normalize(st.fresh[static_cast<std::size_t>(c.dst_location)]);
    } else {
      ctx.halo_cover[{c.arg, c.slot}].push_back(c.rows);
    }
  }
}

// --- Read obligations --------------------------------------------------------

void SymbolicVerifier::check_reads(Ctx& ctx, const SymStep& step,
                                   std::size_t index) {
  const sym::Family& f = family_;
  const int slots = task_slots(step);
  for (int a = 0; a < static_cast<int>(step.args.size()); ++a) {
    const SymArg& arg = step.args[static_cast<std::size_t>(a)];
    const PatternSpec& spec = arg.spec;
    if (!spec.is_input || spec.seg == Segmentation::CustomAligned) {
      continue; // CustomAligned already failed at region derivation
    }
    ReadSpanFormula fm = spec.read_span_formula();
    if (mutator_) {
      mutator_(fm);
    }
    if (!fm.reads) {
      continue;
    }
    const sym::Expr R = datum_rows(arg.datum);
    sym::DatumState& st = state_for(ctx, arg.datum);
    if (st.pending) {
      continue; // already reported when planning the regions
    }
    const int read_slots =
        spec.seg == Segmentation::SingleDevice ? 1 : slots;
    for (int slot = 0; slot < read_slots; ++slot) {
      const std::size_t dst = static_cast<std::size_t>(slot) + 1;
      if (fm.whole_datum) {
        ctx.res->obligations++;
        for (const sym::Interval& r : sym::subtract_over_set(
                 f, {sym::Interval{f.constant(0), R}}, st.fresh[dst])) {
          if (!sym::provably_empty(f, r)) {
            fail(ctx, index, arg.datum, slot, "uncovered-read", f.print(r),
                 "whole-datum read span not provably fresh on the device");
          }
        }
        continue;
      }
      const long num = static_cast<long>(spec.row_scale_num);
      const sym::Expr c0 = num * task_bound(step, slot);
      const sym::Expr c1 = num * task_bound(step, slot + 1);
      sym::Expr lo = c0 + fm.lo_offset;
      sym::Expr hi = c1 + fm.hi_offset;
      long below = 0;
      long above = 0;
      if (slot == 0 && fm.lo_offset < 0) {
        below = -fm.lo_offset; // rows resolved through the boundary mode
        lo = f.constant(0);
      }
      if (slot == read_slots - 1 && fm.hi_offset > 0) {
        above = fm.hi_offset;
        hi = R;
      }
      ctx.res->obligations++;
      for (const sym::Interval& r : sym::subtract_over_set(
               f, {sym::Interval{lo, hi}}, st.fresh[dst])) {
        if (!sym::provably_empty(f, r)) {
          fail(ctx, index, arg.datum, slot, "uncovered-read", f.print(r),
               "aligned read span not provably fresh on the device");
        }
      }
      const auto check_halo = [&](sym::Interval want, const char* which) {
        ctx.res->obligations++;
        const auto it = ctx.halo_cover.find({a, slot});
        static const std::vector<sym::Interval> kNone;
        const std::vector<sym::Interval>& cover =
            it == ctx.halo_cover.end() ? kNone : it->second;
        for (const sym::Interval& r :
             sym::subtract_over_set(f, {std::move(want)}, cover)) {
          if (!sym::provably_empty(f, r)) {
            fail(ctx, index, arg.datum, slot, "uncovered-halo-read",
                 f.print(r),
                 std::string(which) +
                     " boundary rows not covered by a halo copy");
          }
        }
      };
      if (below > 0) {
        if (fm.boundary == maps::Boundary::Wrap) {
          check_halo({R - below, R}, "low");
        } else if (fm.boundary == maps::Boundary::Clamp) {
          check_halo({f.constant(0), f.constant(1)}, "low");
        } // Zero: reads T{}; NoChecks: explicitly unchecked
      }
      if (above > 0) {
        if (fm.boundary == maps::Boundary::Wrap) {
          check_halo({f.constant(0), f.constant(above)}, "high");
        } else if (fm.boundary == maps::Boundary::Clamp) {
          check_halo({R - 1, R}, "high");
        }
      }
    }
  }
}

// --- Write obligations and freshness evolution -------------------------------

void SymbolicVerifier::check_and_apply_writes(Ctx& ctx, const SymStep& step,
                                              std::size_t index) {
  const sym::Family& f = family_;
  const int slots = task_slots(step);
  for (int a = 0; a < static_cast<int>(step.args.size()); ++a) {
    const SymArg& arg = step.args[static_cast<std::size_t>(a)];
    const PatternSpec& spec = arg.spec;
    if (spec.is_input) {
      continue;
    }
    sym::DatumState& st = state_for(ctx, arg.datum);
    const sym::Expr R = datum_rows(arg.datum);
    const auto write_core = [&](const sym::Interval& core, int writer) {
      for (std::size_t loc = 0; loc < st.fresh.size(); ++loc) {
        if (static_cast<int>(loc) == writer) {
          continue;
        }
        std::vector<sym::Interval> kept;
        for (const sym::Interval& iv : st.fresh[loc]) {
          for (sym::Interval& piece : sym::subtract_under(f, iv, core)) {
            kept.push_back(std::move(piece));
          }
        }
        st.fresh[loc] = std::move(kept);
        normalize(st.fresh[loc]);
      }
      st.fresh[static_cast<std::size_t>(writer)].push_back(core);
      normalize(st.fresh[static_cast<std::size_t>(writer)]);
    };
    switch (spec.seg) {
    case Segmentation::PartitionAligned: {
      if (spec.row_scale_den != 1 ||
          static_cast<long>(spec.row_scale_num) != datum_scale(arg.datum)) {
        fail(ctx, index, arg.datum, -1, "unsupported-scale", "",
             "output row scale outside the symbolic model");
        break;
      }
      const long num = static_cast<long>(spec.row_scale_num);
      std::vector<sym::Interval> cores;
      for (int s = 0; s < slots; ++s) {
        cores.push_back(sym::Interval{num * task_bound(step, s),
                                      num * task_bound(step, s + 1)});
      }
      ctx.res->obligations++;
      if (!f.provable_eq(cores.front().lo, f.constant(0))) {
        fail(ctx, index, arg.datum, 0, "write-gap",
             f.print(sym::Interval{f.constant(0), cores.front().lo}),
             "first device's write core does not start at row 0");
      }
      ctx.res->obligations++;
      if (!f.provable_eq(cores.back().hi, R)) {
        fail(ctx, index, arg.datum, slots - 1, "write-gap",
             f.print(sym::Interval{cores.back().hi, R}),
             "last device's write core does not reach the end of the datum");
      }
      for (int s = 0; s + 1 < slots; ++s) {
        const sym::Interval& cur = cores[static_cast<std::size_t>(s)];
        const sym::Interval& nxt = cores[static_cast<std::size_t>(s) + 1];
        ctx.res->obligations++;
        if (!f.provable_le(cur.hi, nxt.lo)) {
          fail(ctx, index, arg.datum, s, "write-overlap",
               f.print(sym::Interval{nxt.lo, cur.hi}),
               "adjacent devices' write cores overlap");
        }
        ctx.res->obligations++;
        if (!f.provable_eq(cur.hi, nxt.lo)) {
          fail(ctx, index, arg.datum, s, "write-gap",
               f.print(sym::Interval{cur.hi, nxt.lo}),
               "rows between adjacent write cores are written by no device");
        }
      }
      for (int s = 0; s < slots; ++s) {
        write_core(cores[static_cast<std::size_t>(s)], s + 1);
      }
      break;
    }
    case Segmentation::DuplicateFull:
    case Segmentation::DynamicAppend:
      // Reductive / appended partials: no single valid global copy exists
      // until a gather aggregates them (monitor set_pending_aggregation).
      st.pending = true;
      for (std::vector<sym::Interval>& v : st.fresh) {
        v.clear();
      }
      break;
    case Segmentation::SingleDevice:
      write_core(sym::Interval{f.constant(0), R}, 1);
      break;
    case Segmentation::Replicate:
    case Segmentation::CustomAligned:
      fail(ctx, index, arg.datum, -1, "outside-model", "",
           "output segmentation outside the symbolic model");
      break;
    }
  }
}

// --- Step drivers ------------------------------------------------------------

void SymbolicVerifier::run_step(Ctx& ctx, const SymStep& step,
                                std::size_t index) {
  switch (step.kind) {
  case SymStep::Kind::Task:
    run_task(ctx, step, index);
    break;
  case SymStep::Kind::Gather:
    run_gather(ctx, step, index);
    break;
  case SymStep::Kind::HostWrite:
    run_host_write(ctx, step, index);
    break;
  }
}

void SymbolicVerifier::run_task(Ctx& ctx, const SymStep& step,
                                std::size_t index) {
  ctx.halo_cover.clear();
  StepTrace st;
  st.pre_state = ctx.state;
  const int slots = task_slots(step);
  // Devices are planned slot by slot, like the scheduler: a replica routed
  // to one device is a candidate source for the next one.
  for (int slot = 0; slot < slots; ++slot) {
    std::vector<sym::Copy> slot_copies;
    for (int a = 0; a < static_cast<int>(step.args.size()); ++a) {
      for (RegionTrace& r : regions_for(ctx, step, index, a, slot)) {
        plan_region(ctx, step, index, a, slot, r, slot_copies);
        st.regions.push_back(std::move(r));
      }
    }
    apply_copies(ctx, slot_copies, index);
    st.copies.insert(st.copies.end(), slot_copies.begin(), slot_copies.end());
  }
  check_reads(ctx, step, index);
  check_and_apply_writes(ctx, step, index);
  trace_.push_back(std::move(st));
}

void SymbolicVerifier::run_gather(Ctx& ctx, const SymStep& step,
                                  std::size_t index) {
  const sym::Family& f = family_;
  StepTrace tr;
  tr.pre_state = ctx.state;
  sym::DatumState& st = state_for(ctx, step.datum);
  const sym::Expr R = datum_rows(step.datum);
  if (st.pending) {
    // Aggregation resolve: every device ships its private copy / appended
    // rows and the host combines them — afterwards only the host is fresh.
    st.pending = false;
    for (std::vector<sym::Interval>& v : st.fresh) {
      v.clear();
    }
    st.fresh[0].push_back(sym::Interval{f.constant(0), R});
  } else {
    // Structured gather: Algorithm 2 planning with the host as target;
    // devices keep their replicas.
    RegionTrace r;
    r.arg = -1;
    r.slot = -1;
    r.global = sym::Interval{f.constant(0), R};
    r.zero_fill = false;
    r.aligned = true;
    std::vector<sym::Copy> copies;
    plan_region(ctx, step, index, -1, -1, r, copies);
    tr.regions.push_back(std::move(r));
    apply_copies(ctx, copies, index);
    tr.copies = std::move(copies);
  }
  trace_.push_back(std::move(tr));
}

void SymbolicVerifier::run_host_write(Ctx& ctx, const SymStep& step,
                                      std::size_t index) {
  (void)index;
  StepTrace tr;
  tr.pre_state = ctx.state;
  sym::DatumState& st = state_for(ctx, step.datum);
  // MarkHostModified: the host wrote every row, all device replicas die.
  for (std::size_t loc = 1; loc < st.fresh.size(); ++loc) {
    st.fresh[loc].clear();
  }
  st.fresh[0].clear();
  st.fresh[0].push_back(
      sym::Interval{family_.constant(0), datum_rows(step.datum)});
  trace_.push_back(std::move(tr));
}

// --- Fixpoint induction ------------------------------------------------------

CertResult SymbolicVerifier::verify_chain(const std::vector<SymStep>& chain,
                                          bool loop) {
  CertResult res;
  Ctx ctx;
  ctx.res = &res;
  if (cluster_nodes_ > 1) {
    // The symbolic copy model has no network tier: cluster transfers take
    // staged multi-leg routes (D2H, NIC, H2D) the proofs cannot see, so
    // certifying them here would claim coverage the simulator does not
    // honor. Report outside-model — the dynamic sanitizer owns clusters,
    // mirroring how CustomAligned segmentations are handled per-arg.
    fail(ctx, 0, -1, -1, "outside-model", "",
         "cluster topologies (" + std::to_string(cluster_nodes_) +
             " nodes) are outside the symbolic model; use the dynamic "
             "sanitizer for cross-node transfer checking");
    return res;
  }
  constexpr int kMaxIter = 6;
  sym::MonitorState prev_end;
  bool fixed = false;
  const int max_iter = loop ? kMaxIter : 1;
  for (int it = 1; it <= max_iter; ++it) {
    ctx.iteration = it;
    trace_.clear();
    for (std::size_t i = 0; i < chain.size(); ++i) {
      run_step(ctx, chain[i], i);
    }
    res.iterations = it;
    if (!res.ok) {
      break; // report the first failing iteration's exact rectangles
    }
    if (loop) {
      if (it > 1 && ctx.state == prev_end) {
        // Induction: this iteration was verified starting from prev_end and
        // ended in prev_end again — every later iteration repeats it.
        fixed = true;
        break;
      }
      prev_end = ctx.state;
    }
  }
  if (loop && res.ok && !fixed) {
    res.ok = false;
    res.failures.push_back(
        SymFailure{0, res.iterations, -1, -1, "no-fixpoint", "",
                   "symbolic monitor state did not close within " +
                       std::to_string(kMaxIter) + " iterations"});
  }
  if (res.ok) {
    res.families = 1;
  }
  return res;
}

// --- Strip certificates (PR 4 interior/boundary split) -----------------------

CertResult SymbolicVerifier::certify_strips(const std::vector<SymStep>& chain,
                                            std::size_t strip_step) {
  CertResult res = verify_chain(chain, /*loop=*/true);
  if (!res.ok) {
    return res;
  }
  const sym::Family& f = family_;
  Ctx ctx;
  ctx.res = &res;
  ctx.iteration = res.iterations;
  const SymStep& step = chain[strip_step];
  std::vector<PatternSpec> specs;
  for (const SymArg& a : step.args) {
    specs.push_back(a.spec);
  }
  const StripShape shape =
      strip_halo_blocks(specs, static_cast<std::size_t>(f.unit));
  if (!shape.any) {
    fail(ctx, strip_step, -1, -1, "no-boundary", "",
         "no windowed input: compute_strips never splits this task");
    return res;
  }
  const long lead = static_cast<long>(shape.lead);
  const long trail = static_cast<long>(shape.trail);
  for (const sym::Var& v : f.vars) {
    ctx.res->obligations++;
    if (v.lb < lead + trail + 1) {
      fail(ctx, strip_step, -1, -1, "family-unsupported", "",
           "gap " + v.name + " lower bound " + std::to_string(v.lb) +
               " leaves no interior strip (need >= " +
               std::to_string(lead + trail + 1) + " block rows)");
      return res;
    }
  }
  // trace_ holds the steady-state (fixpoint) iteration the induction proved.
  const StepTrace& st = trace_[strip_step];
  const long span = f.unit;
  const int slots = task_slots(step);
  for (int slot = 0; slot < slots; ++slot) {
    const sym::Expr b0 = f.gap_prefix[static_cast<std::size_t>(slot)];
    const sym::Expr b1 = f.gap_prefix[static_cast<std::size_t>(slot) + 1];
    for (int a = 0; a < static_cast<int>(step.args.size()); ++a) {
      const SymArg& arg = step.args[static_cast<std::size_t>(a)];
      const PatternSpec& spec = arg.spec;
      if (!spec.is_input || spec.seg != Segmentation::PartitionAligned ||
          (spec.radius_low == 0 && spec.radius_high == 0) ||
          spec.row_scale_num != 1 || spec.row_scale_den != 1) {
        continue; // strips only split over 1/1-scale windowed inputs
      }
      const long rl = spec.radius_low;
      const long rh = spec.radius_high;
      const sym::Expr R = datum_rows(arg.datum);
      // Interior strip: block rows [b0+lead, b1-trail); its reads widen by
      // the window radius and must stay inside the slot's own core band.
      const sym::Interval interior{span * (b0 + lead) - rl,
                                   span * (b1 - trail) + rh};
      const sym::Interval core{span * b0, span * b1};
      ctx.res->obligations++;
      if (!sym::provably_contains(f, core, interior)) {
        fail(ctx, strip_step, arg.datum, slot, "interior-escapes-core",
             f.print(interior),
             "interior strip reads leave the slot's core band");
      }
      // Interior strips launch before any halo traffic lands: every
      // steady-state copy into this device must miss the interior's reads.
      for (const sym::Copy& c : st.copies) {
        if (c.zero_fill || c.datum != arg.datum ||
            c.dst_location != slot + 1) {
          continue;
        }
        ctx.res->obligations++;
        if (!sym::provably_disjoint(f, interior, c.rows)) {
          fail(ctx, strip_step, arg.datum, slot, "interior-waits-on-copy",
               f.print(c.rows),
               "a steady-state copy to the device intersects the interior "
               "strip's reads");
        }
      }
      // Boundary strips: widened reads must be covered by what was fresh on
      // the device before the task plus the task's own copies (aligned to
      // the device, or this argument's halo-slot refills). Rows outside
      // [0, R) resolve through the boundary mode, whose coverage the chain
      // verification already proved — clip at the global edges.
      std::vector<sym::Interval> cover;
      const auto pre = st.pre_state.find(arg.datum);
      if (pre != st.pre_state.end() &&
          static_cast<std::size_t>(slot) + 1 < pre->second.fresh.size()) {
        cover = pre->second.fresh[static_cast<std::size_t>(slot) + 1];
      }
      for (const sym::Copy& c : st.copies) {
        if (c.zero_fill || c.datum != arg.datum) {
          continue;
        }
        if (c.aligned ? c.dst_location == slot + 1
                      : (c.arg == a && c.slot == slot)) {
          cover.push_back(c.rows);
        }
      }
      const auto check_strip = [&](sym::Interval reads, const char* which) {
        ctx.res->obligations++;
        for (const sym::Interval& r :
             sym::subtract_over_set(f, {std::move(reads)}, cover)) {
          if (!sym::provably_empty(f, r)) {
            fail(ctx, strip_step, arg.datum, slot, "uncovered-strip-read",
                 f.print(r),
                 std::string(which) +
                     " boundary strip reads rows neither fresh before the "
                     "task nor moved by its copies");
          }
        }
      };
      if (lead > 0) {
        sym::Interval leading{span * b0 - rl, span * (b0 + lead) + rh};
        if (slot == 0) {
          leading.lo = f.constant(0);
        }
        check_strip(std::move(leading), "leading");
      }
      if (trail > 0) {
        sym::Interval trailing{span * (b1 - trail) - rl, span * b1 + rh};
        if (slot == slots - 1) {
          trailing.hi = R;
        }
        check_strip(std::move(trailing), "trailing");
      }
    }
  }
  return res;
}

// --- Shipped-pattern certification sweep -------------------------------------

namespace {

SymArg in_block(int datum) {
  PatternSpec s;
  s.kind = PatternKind::Block2D;
  s.is_input = true;
  s.seg = Segmentation::PartitionAligned;
  s.boundary = maps::Boundary::NoChecks;
  return {s, datum};
}

SymArg in_window(int datum, int radius, maps::Boundary b) {
  PatternSpec s;
  s.kind = PatternKind::Window;
  s.is_input = true;
  s.seg = Segmentation::PartitionAligned;
  s.radius_low = radius;
  s.radius_high = radius;
  s.boundary = b;
  return {s, datum};
}

SymArg in_scaled_window(int datum, std::size_t num, int radius,
                        maps::Boundary b) {
  SymArg a = in_window(datum, radius, b);
  a.spec.row_scale_num = num;
  return a;
}

SymArg in_repl(int datum) {
  PatternSpec s;
  s.kind = PatternKind::Block1D;
  s.is_input = true;
  s.seg = Segmentation::Replicate;
  return {s, datum};
}

SymArg in_trav(int datum) {
  PatternSpec s;
  s.kind = PatternKind::Traversal;
  s.is_input = true;
  s.seg = Segmentation::SingleDevice;
  return {s, datum};
}

SymArg out_sj(int datum) {
  PatternSpec s;
  s.kind = PatternKind::StructuredInjective;
  s.is_input = false;
  s.seg = Segmentation::PartitionAligned;
  return {s, datum};
}

SymArg out_single(int datum) {
  PatternSpec s;
  s.kind = PatternKind::StructuredInjective;
  s.is_input = false;
  s.seg = Segmentation::SingleDevice;
  return {s, datum};
}

SymArg out_sum(int datum) {
  PatternSpec s;
  s.kind = PatternKind::ReductiveStatic;
  s.is_input = false;
  s.seg = Segmentation::DuplicateFull;
  s.agg = AggregationKind::Sum;
  return {s, datum};
}

SymArg out_masked(int datum) {
  PatternSpec s;
  s.kind = PatternKind::UnstructuredInjective;
  s.is_input = false;
  s.seg = Segmentation::DuplicateFull;
  s.agg = AggregationKind::MaskedMerge;
  return {s, datum};
}

SymArg out_append(int datum) {
  PatternSpec s;
  s.kind = PatternKind::ReductiveDynamic;
  s.is_input = false;
  s.seg = Segmentation::DynamicAppend;
  s.agg = AggregationKind::Append;
  return {s, datum};
}

} // namespace

CertResult certify_shipped(int max_devices) {
  CertResult total;
  const auto run = [&total](const std::string& tag, SymbolicVerifier& v,
                            const std::vector<SymStep>& chain) {
    CertResult r = v.verify_chain(chain, /*loop=*/true);
    for (SymFailure& fl : r.failures) {
      fl.detail = tag + " [" + v.family().name + "]: " + fl.detail;
    }
    total.merge(r);
  };
  const auto run_strips = [&total](const std::string& tag, SymbolicVerifier& v,
                                   const std::vector<SymStep>& chain,
                                   std::size_t strip_step) {
    CertResult r = v.certify_strips(chain, strip_step);
    for (SymFailure& fl : r.failures) {
      fl.detail = tag + " [" + v.family().name + "]: " + fl.detail;
    }
    total.merge(r);
  };
  for (int S = 1; S <= max_devices; ++S) {
    for (int shape = 0; shape < 2; ++shape) {
      const auto make = [&](long min_gap) {
        return shape != 0 ? sym::Family::aligned(S, min_gap)
                          : sym::Family::unaligned(S, min_gap);
      };
      {
        SymbolicVerifier v(make(1));
        run("pointwise ping-pong", v,
            {SymStep::task({in_block(0), out_sj(1)}),
             SymStep::task({in_block(1), out_sj(0)})});
      }
      for (int r = 1; r <= 3; ++r) {
        for (const maps::Boundary b :
             {maps::Boundary::Wrap, maps::Boundary::Clamp, maps::Boundary::Zero,
              maps::Boundary::NoChecks}) {
          SymbolicVerifier v(make(std::max(1L, static_cast<long>(r))));
          run("window r" + std::to_string(r), v,
              {SymStep::task({in_window(0, r, b), out_sj(1)}),
               SymStep::task({in_block(1), out_sj(0)})});
        }
      }
      {
        SymbolicVerifier v(make(1));
        run("replicated input", v,
            {SymStep::task({in_repl(2), in_window(0, 1, maps::Boundary::Wrap),
                            out_sj(1)}),
             SymStep::task({in_block(1), out_sj(0)})});
      }
      {
        SymbolicVerifier v(make(1));
        run("reductive sum", v, {SymStep::task({in_block(0), out_sum(1)}),
                                 SymStep::gather(1)});
      }
      {
        SymbolicVerifier v(make(1));
        run("masked merge", v, {SymStep::task({in_block(0), out_masked(1)}),
                                SymStep::gather(1)});
      }
      {
        SymbolicVerifier v(make(1));
        run("dynamic append", v, {SymStep::task({in_block(0), out_append(1)}),
                                  SymStep::gather(1)});
      }
      {
        SymbolicVerifier v(make(1));
        v.set_datum_scale(0, 2);
        run("2/1 row scale", v,
            {SymStep::host_write(0),
             SymStep::task({in_scaled_window(0, 2, 1, maps::Boundary::Clamp),
                            out_sj(1)})});
      }
      {
        SymbolicVerifier v(make(1));
        run("in-place pointwise", v,
            {SymStep::task({in_block(0), out_sj(0)})});
      }
      {
        SymbolicVerifier v(make(1));
        run("host-modify loop", v,
            {SymStep::host_write(0),
             SymStep::task({in_window(0, 1, maps::Boundary::Clamp),
                            out_sj(1)})});
      }
      {
        SymbolicVerifier v(make(1));
        run("gather-read", v,
            {SymStep::task({in_window(0, 1, maps::Boundary::Wrap), out_sj(1)}),
             SymStep::gather(1),
             SymStep::task({in_block(1), out_sj(0)})});
      }
      {
        SymbolicVerifier v(make(1));
        run("traversal single-device", v,
            {SymStep::task({in_trav(0), out_single(1)}),
             SymStep::task({in_block(1), out_sj(0)})});
      }
    }
    if (S >= 2) {
      // Strip-split certificates: gaps counted in block rows, wide enough
      // for a non-empty interior (lead + trail + 1).
      for (const long span : {1L, 4L}) {
        for (const int r : {1, 3}) {
          for (int shape = 0; shape < 2; ++shape) {
            const long lead = (r + span - 1) / span;
            const long min_gap = 2 * lead + 1;
            SymbolicVerifier v(shape != 0
                                   ? sym::Family::aligned(S, min_gap, span)
                                   : sym::Family::unaligned(S, min_gap, span));
            run_strips("strip split r" + std::to_string(r) + " span" +
                           std::to_string(span),
                       v,
                       {SymStep::task(
                            {in_window(0, r, maps::Boundary::Wrap), out_sj(1)}),
                        SymStep::task({in_block(1), out_sj(0)})},
                       0);
          }
        }
      }
    }
  }
  return total;
}

} // namespace maps::multi
