#include "multi/memory_analyzer.hpp"

#include <algorithm>
#include <iterator>
#include <stdexcept>

namespace maps::multi {

MemoryAnalyzer::MemoryAnalyzer(sim::Node& node, std::vector<int> devices)
    : node_(node), devices_(std::move(devices)) {}

MemoryAnalyzer::~MemoryAnalyzer() { release_all(); }

void MemoryAnalyzer::record(const PatternSpec& spec, const SegmentReq& req,
                            int slot) {
  if (!req.active) {
    return;
  }
  const Key key{spec.datum->key(), slot};
  auto [it, inserted] = plans_.try_emplace(
      key, Plan{req.origin, req.origin + static_cast<long>(req.local_rows),
                0});
  if (!inserted) {
    // N-dimensional bounding box of stored + predicted requirements (§4.2);
    // with row-band segmentation this is a 1-D interval hull.
    it->second.origin = std::min(it->second.origin, req.origin);
    it->second.end = std::max(it->second.end,
                              req.origin + static_cast<long>(req.local_rows));
  }
  if (spec.agg == AggregationKind::MaskedMerge) {
    // Unstructured Injective carries a per-element write mask after the
    // payload (DESIGN.md).
    it->second.extra_tail_bytes = std::max(
        it->second.extra_tail_bytes,
        spec.datum->rows() * spec.datum->row_elems());
  }
  datum_of_[key] = spec.datum;
}

const MemoryAnalyzer::Alloc& MemoryAnalyzer::ensure(const Datum* datum,
                                                    int slot) {
  const Key key{datum->key(), slot};
  auto plan_it = plans_.find(key);
  if (plan_it == plans_.end()) {
    throw std::logic_error("MemoryAnalyzer::ensure: datum '" + datum->name() +
                           "' was never analyzed for slot " +
                           std::to_string(slot));
  }
  const Plan& plan = plan_it->second;
  auto alloc_it = allocs_.find(key);
  if (alloc_it != allocs_.end()) {
    Alloc& a = alloc_it->second;
    if (plan.origin < a.origin ||
        plan.end > a.origin + static_cast<long>(a.rows)) {
      throw std::runtime_error(
          "MemoryAnalyzer: requirements for datum '" + datum->name() +
          "' grew after allocation on slot " + std::to_string(slot) +
          "; AnalyzeCall every task before the first Invoke (paper §4.2)");
    }
    return a;
  }
  Alloc a;
  a.origin = plan.origin;
  a.rows = plan.rows();
  a.row_bytes = datum->row_bytes();
  const std::size_t bytes = a.rows * a.row_bytes + plan.extra_tail_bytes;
  a.buffer = node_.malloc_device(devices_.at(static_cast<std::size_t>(slot)),
                                 bytes);
  return allocs_.emplace(key, a).first->second;
}

const MemoryAnalyzer::Alloc* MemoryAnalyzer::find(const Datum* datum,
                                                  int slot) const {
  auto it = allocs_.find(Key{datum->key(), slot});
  return it == allocs_.end() ? nullptr : &it->second;
}

const MemoryAnalyzer::Plan* MemoryAnalyzer::plan(const Datum* datum,
                                                 int slot) const {
  auto it = plans_.find(Key{datum->key(), slot});
  return it == plans_.end() ? nullptr : &it->second;
}

std::size_t MemoryAnalyzer::allocated_bytes(int slot) const {
  std::size_t total = 0;
  for (const auto& [key, alloc] : allocs_) {
    if (key.second == slot && alloc.buffer != nullptr) {
      total += alloc.buffer->size();
    }
  }
  return total;
}

void MemoryAnalyzer::drop_slot(int slot) {
  for (auto it = allocs_.begin(); it != allocs_.end();) {
    if (it->first.second == slot) {
      node_.free_device(it->second.buffer);
      it = allocs_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = plans_.begin(); it != plans_.end();) {
    it = it->first.second == slot ? plans_.erase(it) : std::next(it);
  }
  for (auto it = datum_of_.begin(); it != datum_of_.end();) {
    it = it->first.second == slot ? datum_of_.erase(it) : std::next(it);
  }
}

bool MemoryAnalyzer::needs_grow(const Datum* datum, int slot) const {
  const Key key{datum->key(), slot};
  auto plan_it = plans_.find(key);
  auto alloc_it = allocs_.find(key);
  if (plan_it == plans_.end() || alloc_it == allocs_.end()) {
    return false;
  }
  const Plan& p = plan_it->second;
  const Alloc& a = alloc_it->second;
  return p.origin < a.origin || p.end > a.origin + static_cast<long>(a.rows);
}

void MemoryAnalyzer::grow(const Datum* datum, int slot) {
  auto it = allocs_.find(Key{datum->key(), slot});
  if (it == allocs_.end()) {
    return;
  }
  node_.free_device(it->second.buffer);
  allocs_.erase(it);
}

std::size_t MemoryAnalyzer::planned_bytes(const Datum* datum, int slot) const {
  auto it = plans_.find(Key{datum->key(), slot});
  if (it == plans_.end()) {
    return 0;
  }
  return it->second.rows() * datum->row_bytes() + it->second.extra_tail_bytes;
}

std::vector<MemoryAnalyzer::Resident> MemoryAnalyzer::resident(int slot) const {
  std::vector<Resident> out;
  for (const auto& [key, alloc] : allocs_) {
    if (key.second == slot && alloc.buffer != nullptr) {
      out.push_back(Resident{datum_of_.at(key), &alloc});
    }
  }
  std::sort(out.begin(), out.end(), [](const Resident& a, const Resident& b) {
    return a.datum->name() != b.datum->name()
               ? a.datum->name() < b.datum->name()
               : a.datum->key() < b.datum->key();
  });
  return out;
}

void MemoryAnalyzer::release_all() {
  for (auto& [key, alloc] : allocs_) {
    node_.free_device(alloc.buffer);
    alloc.buffer = nullptr;
  }
  allocs_.clear();
}

} // namespace maps::multi
